//! **Experiment: serve** — the online serving layer under closed-loop
//! client load: micro-batched vs unbatched latency/throughput, and
//! snapshot hot-swap under fire.
//!
//! Protocol (in order, and nothing is timed until step 2 passes):
//!
//! 1. Build an index, save it through `pg_store`, serve it from a
//!    `pg_serve::Server`.
//! 2. **Correctness gate**: every TCP response — from one sequential
//!    client and from all concurrent clients — is asserted bit-identical
//!    to a direct `QueryEngine::batch_beam_detailed` run over the same
//!    snapshot. A divergence aborts the experiment.
//! 3. Closed-loop load: C client threads issue single queries as fast as
//!    responses return, against the micro-batched server and then against
//!    an unbatched one. Reported per mode: p50/p99 request latency and
//!    aggregate QPS, plus the observed mean batch size.
//! 4. Hot-swap demo: under the same load, the registry swaps between two
//!    snapshots; the run asserts **zero** dropped or failed requests and
//!    that every response's epoch belongs to a generation the registry
//!    handed out.
//! 5. With `--overload`: shedding demo. A zero-capacity (lame-duck) queue
//!    must refuse **every** query with an `Overloaded` error frame on a
//!    connection that keeps serving — asserted, not sampled — and a
//!    retrying client must classify that refusal as transient, burn its
//!    whole retry budget, and surface the typed error. Then a burst run
//!    against a tiny queue reports how many requests shed and how many
//!    retries the clients spent riding it out (every request must still
//!    succeed eventually).
//!
//! On this workspace's 1-CPU reference container the batching win comes
//! from dispatch amortization (one pool entry per group instead of per
//! query), not parallel execution — read the batched-vs-unbatched delta
//! with that in mind, and always alongside the recall frontiers of
//! `BENCH_pr5.json` (quality does not change: same engine, same answers).
//!
//! Results land in `BENCH_<label>.json` (schema_version 1, label `pr6` /
//! `smoke`). Existing committed artifacts are never overwritten without
//! `--force` or a non-default `--label`.
//!
//! Run: `cargo run --release -p pg_bench --bin exp_serve
//! [--smoke | --full] [--overload] [--threads N] [--clients C]
//! [--label NAME] [--force]`

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use pg_bench::{fmt, full_mode, init_threads, value_flag, Table};
use pg_core::{AnyEngine, GNet, QueryEngine};
use pg_metric::Euclidean;
use pg_serve::client::{Client, RetryPolicy, RetryingClient};
use pg_serve::error::{ErrorCode, ServeError};
use pg_serve::registry::IndexRegistry;
use pg_serve::server::{ServeConfig, Server};
use pg_workloads as workloads;

const EF: u32 = 32;
const K: u32 = 10;
const INDEX: &str = "main";

fn percentile(sorted: &[u64], p: f64) -> u64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

struct LoadOutcome {
    p50_us: f64,
    p99_us: f64,
    qps: f64,
    requests: u64,
    mean_batch: f64,
    coalesced_batches: u64,
}

/// Closed-loop load: `clients` threads, each issuing its query schedule
/// one request at a time, recording per-request latency.
fn closed_loop(
    server: &Server,
    clients: usize,
    rounds: usize,
    queries: &Arc<Vec<Vec<f64>>>,
) -> LoadOutcome {
    let before = server.stats();
    let addr = server.local_addr();
    let t0 = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            let queries = Arc::clone(queries);
            std::thread::spawn(move || -> Vec<u64> {
                let mut client = Client::connect(addr).expect("client connect");
                let mut lat = Vec::with_capacity(rounds * queries.len());
                for round in 0..rounds {
                    // Offset each client's schedule so the wire never sees
                    // all clients asking the same question at once.
                    let shift = (c * 7 + round) % queries.len();
                    for i in 0..queries.len() {
                        let q = &queries[(i + shift) % queries.len()];
                        let t = Instant::now();
                        client
                            .query(INDEX, q, EF, K)
                            .expect("query failed under load");
                        lat.push(t.elapsed().as_nanos() as u64);
                    }
                }
                lat
            })
        })
        .collect();
    let mut lat: Vec<u64> = Vec::new();
    for w in workers {
        lat.extend(w.join().expect("load client panicked"));
    }
    let wall = t0.elapsed().as_secs_f64();
    let after = server.stats();
    lat.sort_unstable();
    let requests = lat.len() as u64;
    let delta_req = after.requests - before.requests;
    let delta_batches = after.batches - before.batches;
    LoadOutcome {
        p50_us: percentile(&lat, 0.50) as f64 / 1_000.0,
        p99_us: percentile(&lat, 0.99) as f64 / 1_000.0,
        qps: requests as f64 / wall,
        requests,
        mean_batch: if delta_batches == 0 {
            1.0
        } else {
            delta_req as f64 / delta_batches as f64
        },
        coalesced_batches: after.coalesced_batches - before.coalesced_batches,
    }
}

fn main() {
    let threads = init_threads();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let full = full_mode();
    let (n, d, m, clients, rounds, swaps) = if smoke {
        (400, 2, 32, 4, 2, 3)
    } else if full {
        (20_000, 3, 256, 8, 6, 12)
    } else {
        (6_000, 3, 128, 8, 4, 8)
    };
    let clients = value_flag("--clients")
        .and_then(|v| v.parse().ok())
        .filter(|&c| c >= 1)
        .unwrap_or(clients);
    let label_flag = value_flag("--label");
    let label_is_default = label_flag.is_none();
    let label = label_flag.unwrap_or_else(|| if smoke { "smoke".into() } else { "pr6".into() });

    println!("# serve: micro-batched TCP serving, hot-swap under load");
    println!(
        "(n = {n}, d = {d}, m = {m} queries, {clients} client(s) x {rounds} round(s), \
         ef = {EF}, k = {K}, {threads} thread(s), label: {label})\n"
    );

    // ---- 1. Build two snapshots (A serves; B is the swap target) -----------
    let side = (n as f64).sqrt() * 4.0;
    let build = |seed: u64| {
        let data = workloads::uniform_cube_flat(n, d, side, seed).into_dataset(Euclidean);
        let g = GNet::build_fast(&data, 1.0);
        QueryEngine::new(g.graph, data)
    };
    let t0 = Instant::now();
    let engine_a = build(11);
    let build_secs = t0.elapsed().as_secs_f64();
    let engine_b = build(23);
    let dir = std::env::temp_dir();
    let path_a = dir.join(format!("exp_serve_a_{}.pgix", std::process::id()));
    let path_b = dir.join(format!("exp_serve_b_{}.pgix", std::process::id()));
    engine_a.save(&path_a).expect("saving snapshot A");
    engine_b.save(&path_b).expect("saving snapshot B");
    println!(
        "built and saved two {n}-point snapshots (build: {} s each)\n",
        fmt(build_secs, 2)
    );

    // ---- 2. Correctness gate: wire answers == direct engine answers --------
    let queries: Arc<Vec<Vec<f64>>> = Arc::new(
        workloads::uniform_queries_flat(m, d, 0.0, side, 31)
            .into_rows()
            .iter()
            .map(|r| r.coords().to_vec())
            .collect(),
    );
    // The baseline runs on the engine *as loaded from the file* — the very
    // bytes the server serves.
    let (direct_engine, meta) = AnyEngine::load(&path_a).expect("loading snapshot A");
    let flat_queries: Vec<pg_metric::FlatRow> = queries
        .iter()
        .map(|q| pg_metric::FlatRow::from(q.clone()))
        .collect();
    let starts = vec![meta.entry_point; flat_queries.len()];
    let expected =
        direct_engine.batch_beam_detailed(&starts, &flat_queries, EF as usize, K as usize);
    let expected_bits: Arc<Vec<Vec<(u32, u64)>>> = Arc::new(
        expected
            .outcomes
            .iter()
            .map(|o| o.results.iter().map(|&(id, x)| (id, x.to_bits())).collect())
            .collect(),
    );

    let registry = Arc::new(IndexRegistry::new());
    registry
        .register_from_path(INDEX, &path_a)
        .expect("registering snapshot A");
    let server = Server::bind("127.0.0.1:0", Arc::clone(&registry), ServeConfig::default())
        .expect("binding the batched server");
    let addr = server.local_addr();

    // Sequential gate.
    let mut gate = Client::connect(addr).expect("gate client");
    for (i, q) in queries.iter().enumerate() {
        let reply = gate.query(INDEX, q, EF, K).expect("gate query");
        let bits: Vec<(u32, u64)> = reply
            .results
            .iter()
            .map(|&(id, x)| (id, x.to_bits()))
            .collect();
        assert_eq!(
            bits, expected_bits[i],
            "sequential TCP answer {i} diverged from the direct engine run"
        );
        assert_eq!(reply.dist_comps, expected.outcomes[i].dist_comps);
        assert_eq!(reply.expansions, expected.outcomes[i].expansions);
    }
    // Concurrent gate: same assertion from every client at once, so
    // coalesced execution is itself gated before any timing.
    let gate_workers: Vec<_> = (0..clients)
        .map(|_| {
            let queries = Arc::clone(&queries);
            let expected_bits = Arc::clone(&expected_bits);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("gate client");
                for (i, q) in queries.iter().enumerate() {
                    let reply = client.query(INDEX, q, EF, K).expect("gate query");
                    let bits: Vec<(u32, u64)> = reply
                        .results
                        .iter()
                        .map(|&(id, x)| (id, x.to_bits()))
                        .collect();
                    assert_eq!(
                        bits, expected_bits[i],
                        "concurrent TCP answer {i} diverged from the direct engine run"
                    );
                }
            })
        })
        .collect();
    for w in gate_workers {
        w.join().expect("a correctness-gate client failed");
    }
    println!(
        "correctness gate passed: {} sequential + {} concurrent responses \
         bit-identical to the direct engine run\n",
        m,
        m * clients
    );

    // ---- 3. Closed-loop load: batched vs unbatched --------------------------
    let batched = closed_loop(&server, clients, rounds, &queries);
    drop(server);

    let registry_u = Arc::new(IndexRegistry::new());
    registry_u
        .register_from_path(INDEX, &path_a)
        .expect("registering snapshot A (unbatched)");
    let server_u = Server::bind(
        "127.0.0.1:0",
        registry_u,
        ServeConfig {
            batching: false,
            ..ServeConfig::default()
        },
    )
    .expect("binding the unbatched server");
    let unbatched = closed_loop(&server_u, clients, rounds, &queries);
    drop(server_u);

    let mut t = Table::new(&[
        "mode",
        "requests",
        "p50 us",
        "p99 us",
        "QPS",
        "mean batch",
        "coalesced",
    ]);
    for (name, o) in [("batched", &batched), ("unbatched", &unbatched)] {
        t.row(vec![
            name.into(),
            o.requests.to_string(),
            fmt(o.p50_us, 1),
            fmt(o.p99_us, 1),
            fmt(o.qps, 0),
            fmt(o.mean_batch, 2),
            o.coalesced_batches.to_string(),
        ]);
    }
    t.print();
    println!();

    // ---- 4. Hot-swap under load ---------------------------------------------
    let registry_s = Arc::new(IndexRegistry::new());
    registry_s
        .register_from_path(INDEX, &path_a)
        .expect("registering snapshot A (swap run)");
    let server_s = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&registry_s),
        ServeConfig::default(),
    )
    .expect("binding the hot-swap server");
    let addr_s = server_s.local_addr();
    let stop = Arc::new(AtomicBool::new(false));
    let served = Arc::new(AtomicU64::new(0));
    let errors = Arc::new(AtomicU64::new(0));
    let epochs_seen = Arc::new(Mutex::new(std::collections::BTreeSet::new()));
    let swap_workers: Vec<_> = (0..clients)
        .map(|_| {
            let queries = Arc::clone(&queries);
            let stop = Arc::clone(&stop);
            let served = Arc::clone(&served);
            let errors = Arc::clone(&errors);
            let epochs_seen = Arc::clone(&epochs_seen);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr_s).expect("swap client");
                while !stop.load(Ordering::Relaxed) {
                    for q in queries.iter() {
                        match client.query(INDEX, q, EF, K) {
                            Ok(reply) => {
                                served.fetch_add(1, Ordering::Relaxed);
                                epochs_seen.lock().unwrap().insert(reply.epoch);
                            }
                            Err(_) => {
                                errors.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(40));
    let mut last_epoch = 0;
    for s in 0..swaps {
        let target = if s % 2 == 0 { &path_b } else { &path_a };
        last_epoch = registry_s
            .swap_from_path(INDEX, target)
            .expect("hot-swap failed");
        std::thread::sleep(Duration::from_millis(if smoke { 25 } else { 60 }));
    }
    stop.store(true, Ordering::Relaxed);
    for w in swap_workers {
        w.join().expect("a hot-swap load client failed");
    }
    let served = served.load(Ordering::Relaxed);
    let errors = errors.load(Ordering::Relaxed);
    let epochs = epochs_seen.lock().unwrap().len();
    drop(server_s);
    std::fs::remove_file(&path_a).ok();
    std::fs::remove_file(&path_b).ok();

    assert_eq!(
        errors, 0,
        "hot-swap dropped or failed requests — the zero-drop contract is broken"
    );
    assert!(served > 0, "the hot-swap load generator served nothing");
    // Initial registration mints epoch 1; each swap adds one.
    assert_eq!(last_epoch, (swaps + 1) as u64, "unexpected final epoch");
    println!(
        "hot-swap: {swaps} swaps under load, {served} requests served, 0 errors, \
         {epochs} distinct epochs observed\n"
    );

    // ---- 5. Overload and shedding (--overload) ------------------------------
    let overload = std::env::args().any(|a| a == "--overload");
    let mut overload_json = String::new();
    if overload {
        // 5a. Lame-duck determinism: a zero-capacity queue must shed every
        // query with an `Overloaded` error frame — and shedding costs an
        // error frame, never the connection.
        let server_o = Server::bind(
            "127.0.0.1:0",
            Arc::clone(&registry_s),
            ServeConfig {
                max_queue: 0,
                ..ServeConfig::default()
            },
        )
        .expect("binding the lame-duck server");
        let mut lame = Client::connect(server_o.local_addr()).expect("lame-duck client");
        for (i, q) in queries.iter().enumerate() {
            match lame.query(INDEX, q, EF, K) {
                Err(ServeError::Remote {
                    code: ErrorCode::Overloaded,
                    ..
                }) => {}
                other => panic!(
                    "lame-duck query {i}: every reply must be an Overloaded frame, got {other:?}"
                ),
            }
            lame.ping().expect("shedding must not cost the connection");
        }
        // A retrying client classifies the refusal as transient, burns its
        // whole budget against a server that stays overloaded, and returns
        // the typed error.
        let lameduck_policy = RetryPolicy {
            max_retries: 3,
            backoff_start: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(4),
        };
        let mut retrying = RetryingClient::connect(server_o.local_addr(), lameduck_policy)
            .expect("retrying client");
        let err = retrying
            .query(INDEX, &queries[0], EF, K)
            .expect_err("the lame-duck server never stops shedding");
        assert!(err.is_retryable(), "Overloaded must classify as transient");
        assert_eq!(retrying.retries(), lameduck_policy.max_retries as u64);
        let lameduck_shed = server_o.stats().shed;
        assert_eq!(
            lameduck_shed,
            m as u64 + 1 + lameduck_policy.max_retries as u64
        );
        drop(server_o);
        println!(
            "overload (lame-duck): {m} queries + {} retrying attempts, all shed with \
             Overloaded frames, connections intact",
            lameduck_policy.max_retries + 1
        );

        // 5b. Burst: concurrent closed-loop clients against a one-slot
        // queue. Shedding here depends on timing, so the counts are
        // reported rather than asserted — but every request must still
        // succeed once its retries ride the burst out.
        let server_b = Server::bind(
            "127.0.0.1:0",
            Arc::clone(&registry_s),
            ServeConfig {
                max_batch: 2,
                max_queue: 1,
                ..ServeConfig::default()
            },
        )
        .expect("binding the burst server");
        let addr_b = server_b.local_addr();
        let burst_policy = RetryPolicy {
            max_retries: 16,
            backoff_start: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(8),
        };
        let burst_workers: Vec<_> = (0..clients)
            .map(|_| {
                let queries = Arc::clone(&queries);
                std::thread::spawn(move || -> u64 {
                    let mut client =
                        RetryingClient::connect(addr_b, burst_policy).expect("burst client");
                    for _ in 0..rounds {
                        for q in queries.iter() {
                            client
                                .query(INDEX, q, EF, K)
                                .expect("burst query must eventually succeed");
                        }
                    }
                    client.retries()
                })
            })
            .collect();
        let mut burst_retries = 0u64;
        for w in burst_workers {
            burst_retries += w.join().expect("a burst client failed");
        }
        let burst_requests = (clients * rounds * m) as u64;
        let burst_shed = server_b.stats().shed;
        drop(server_b);
        println!(
            "overload (burst): {burst_requests} requests through a 1-slot queue, \
             {burst_shed} shed, {burst_retries} retries, 0 failures\n"
        );

        overload_json = format!(
            "    \"overload\": {{ \"lameduck_requests\": {}, \"lameduck_shed\": {lameduck_shed}, \
             \"burst_requests\": {burst_requests}, \"burst_shed\": {burst_shed}, \
             \"burst_retries\": {burst_retries}, \"burst_failures\": 0 }}",
            m as u64 + 1 + lameduck_policy.max_retries as u64
        );
    }

    // ---- 6. Artifact ---------------------------------------------------------
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"schema_version\": 1,");
    let _ = writeln!(j, "  \"label\": \"{label}\",");
    let _ = writeln!(j, "  \"smoke\": {smoke},");
    let _ = writeln!(j, "  \"threads\": {threads},");
    let _ = writeln!(j, "  \"serve\": {{");
    let _ = writeln!(
        j,
        "    \"n\": {n}, \"d\": {d}, \"m\": {m}, \"ef\": {EF}, \"k\": {K}, \
         \"clients\": {clients}, \"rounds\": {rounds},"
    );
    for (name, o) in [("batched", &batched), ("unbatched", &unbatched)] {
        let _ = writeln!(
            j,
            "    \"{name}\": {{ \"requests\": {}, \"p50_us\": {}, \"p99_us\": {}, \
             \"qps\": {}, \"mean_batch\": {}, \"coalesced_batches\": {} }},",
            o.requests,
            fmt(o.p50_us, 1),
            fmt(o.p99_us, 1),
            fmt(o.qps, 1),
            fmt(o.mean_batch, 3),
            o.coalesced_batches
        );
    }
    let _ = writeln!(
        j,
        "    \"hotswap\": {{ \"swaps\": {swaps}, \"requests\": {served}, \
         \"errors\": {errors}, \"distinct_epochs\": {epochs} }}{}",
        if overload { "," } else { "" }
    );
    if overload {
        let _ = writeln!(j, "{overload_json}");
    }
    let _ = writeln!(j, "  }}");
    let _ = writeln!(j, "}}");

    match pg_bench::write_bench_artifact(&label, label_is_default, &j) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    }
}
