//! **Experiment ABL-φ** — ablation of the reach constant `φ`.
//!
//! Theorem 1.1's proof (Lemma 2.2) requires `φ = 1 + 2^{η+1}` (Eq. 4; `φ = 9`
//! at ε = 1). How much of that is proof slack on concrete inputs? This sweep
//! rebuilds `G_net`'s edges with reach factors below and above the paper's
//! and reports edge count, navigability, and worst greedy ratio on three
//! workload shapes (uniform, clustered, geometric chain).
//!
//! Expected shape: the paper's `φ` always passes; small reach factors break
//! first on the *chain* (multi-scale) workload, because a hop must be able to
//! jump from a level-`i` cover to a level-`β = α − η − 1` cover (the proof of
//! Lemma 2.2) — exactly the multi-scale structure chains exercise.
//!
//! Run: `cargo run --release -p pg-bench --bin exp_ablation_phi [--full]`

#![forbid(unsafe_code)]

use pg_bench::{fmt, full_mode, measure_greedy, Table};
use pg_core::{check_navigable, gnet_edges_with_phi, GNetParams};
use pg_metric::{Euclidean, FlatPoints};
use pg_nets::NetHierarchy;
use pg_workloads as workloads;

fn main() {
    println!("# ABL-phi: is the paper's reach constant phi = 1 + 2^(eta+1) tight?\n");
    let eps = 1.0;
    let paper_phi = GNetParams::new(eps).phi;
    println!("paper constant at ε = {eps}: φ = {paper_phi}\n");

    let n = if full_mode() { 1000 } else { 400 };
    let datasets: Vec<(&str, FlatPoints)> = vec![
        ("uniform", workloads::uniform_cube_flat(n, 2, 120.0, 61)),
        (
            "clusters",
            workloads::gaussian_clusters_flat(n, 2, 10, 1.5, 120.0, 62),
        ),
        (
            "chain",
            workloads::geometric_chain_flat(10, n / 10, 4.0, 2, 63),
        ),
    ];

    for (name, points) in datasets {
        let queries = {
            let mut qs = workloads::perturbed_queries_flat(&points, 25, 0.8, 64).into_rows();
            qs.extend(workloads::uniform_queries_flat(15, 2, -20.0, 150.0, 65).into_rows());
            qs
        };
        let data = points.into_dataset(Euclidean);
        let hierarchy = NetHierarchy::build(&data);

        println!(
            "## workload: {name} (n = {n}, logΔ ≈ {})\n",
            hierarchy.log_aspect()
        );
        let mut t = Table::new(&["φ", "vs paper", "edges", "navigable?", "worst greedy ratio"]);
        for phi in [1.5, 2.0, 3.0, 5.0, 7.0, paper_phi, 12.0] {
            let g = gnet_edges_with_phi(&data, &hierarchy, phi);
            let nav = check_navigable(&g, &data, &queries, eps).is_ok();
            let (_, _, worst) = measure_greedy(&g, &data, &queries);
            t.row(vec![
                fmt(phi, 1),
                if (phi - paper_phi).abs() < 1e-9 {
                    "= (Eq. 4)".into()
                } else {
                    format!("{:.2}x", phi / paper_phi)
                },
                g.edge_count().to_string(),
                if nav { "yes".into() } else { "NO".to_string() },
                if worst.is_finite() {
                    fmt(worst, 3)
                } else {
                    "∞".into()
                },
            ]);
            if (phi - paper_phi).abs() < 1e-9 {
                assert!(nav, "the paper's constant must always be navigable");
            }
        }
        t.print();
        println!();
    }

    println!("Reading: the guarantee column flips to NO below some workload-dependent");
    println!("threshold < 9 — the proof constant buys worst-case safety; practical");
    println!("deployments could trade reach for size where the data is benign.");
}
