//! **Experiment T1.1-build** — Theorem 1.1 construction time:
//! the cascade builder is near-linear in `n`; the naive scan and
//! slow-preprocessing DiskANN are quadratic+. Both distance-computation
//! counts (the paper's cost model) and wall-clock seconds are reported,
//! with fitted log–log slopes.
//!
//! Run: `cargo run --release -p pg_bench --bin exp_t11_build
//! [--full] [--threads N] [--save-index PATH]`
//!
//! The cascade/naive candidate generation and the DiskANN-slow per-point
//! pruning shard across the thread pool: `--threads` moves the wall-clock
//! columns while the distance counts (the paper's cost model) stay exactly
//! the same.
//!
//! `--save-index PATH` makes this the **offline half** of the experiment
//! pair: after the sweep, the index at the largest `n` is rebuilt on plain
//! `Euclidean` and persisted through the `pg_store` snapshot format, ready
//! for `exp_t11_query --load-index PATH` to serve without rebuilding.

#![forbid(unsafe_code)]

use std::time::Instant;

use pg_baselines::slow_preprocessing;
use pg_bench::{fmt, full_mode, init_threads, loglog_slope, value_flag, Table};
use pg_core::{GNet, QueryEngine};
use pg_metric::{Counting, Euclidean};
use pg_workloads as workloads;

fn main() {
    let threads = init_threads();
    println!("# T1.1-build: construction cost vs n (distance computations and seconds)");
    println!("(parallel candidate generation on {threads} thread(s); dist counts are thread-invariant)\n");

    let ns: Vec<usize> = if full_mode() {
        vec![1000, 2000, 4000, 8000, 16000]
    } else {
        vec![500, 1000, 2000, 4000]
    };
    let slow_cap = if full_mode() { 8000 } else { 2000 };

    let mut t = Table::new(&[
        "n",
        "fast dists",
        "naive dists",
        "covertree dists",
        "DiskANN-slow dists",
        "fast s",
        "naive s",
        "slow s",
    ]);
    let mut xs = Vec::new();
    let mut fast_d = Vec::new();
    let mut naive_d = Vec::new();
    let mut ct_d = Vec::new();
    let mut slow_d: Vec<f64> = Vec::new();
    let mut slow_x: Vec<f64> = Vec::new();

    for &n in &ns {
        let data = workloads::uniform_cube_flat(n, 2, (n as f64).sqrt() * 4.0, 7)
            .into_dataset(Counting::new(Euclidean));

        data.metric().reset();
        let t0 = Instant::now();
        let _g = GNet::build_fast(&data, 1.0);
        let fast_secs = t0.elapsed().as_secs_f64();
        let fd = data.metric().take() as f64;

        let t0 = Instant::now();
        let _g = GNet::build_naive(&data, 1.0);
        let naive_secs = t0.elapsed().as_secs_f64();
        let nd = data.metric().take() as f64;

        let _g = GNet::build_covertree(&data, 1.0);
        let cd = data.metric().take() as f64;

        let (sd, slow_secs) = if n <= slow_cap {
            let t0 = Instant::now();
            let _s = slow_preprocessing(&data, 3.0);
            let secs = t0.elapsed().as_secs_f64();
            (data.metric().take() as f64, secs)
        } else {
            data.metric().reset();
            (f64::NAN, f64::NAN)
        };

        t.row(vec![
            n.to_string(),
            fmt(fd, 0),
            fmt(nd, 0),
            fmt(cd, 0),
            if sd.is_nan() { "-".into() } else { fmt(sd, 0) },
            fmt(fast_secs, 3),
            fmt(naive_secs, 3),
            if slow_secs.is_nan() {
                "-".into()
            } else {
                fmt(slow_secs, 3)
            },
        ]);

        xs.push(n as f64);
        fast_d.push(fd);
        naive_d.push(nd);
        ct_d.push(cd);
        if !sd.is_nan() {
            slow_x.push(n as f64);
            slow_d.push(sd);
        }
    }
    t.print();

    println!("\nFitted log-log slopes (distance computations vs n):");
    println!(
        "  fast (cascade, Thm 1.1):      {:.2}   — theory ~1 (near-linear)",
        loglog_slope(&xs, &fast_d)
    );
    println!(
        "  covertree (Sec 2.4 verbatim): {:.2}   — theory ~1 (polylog per point)",
        loglog_slope(&xs, &ct_d)
    );
    println!(
        "  naive full-scan:              {:.2}   — theory ~2 (n · Σ|Y_i|)",
        loglog_slope(&xs, &naive_d)
    );
    if slow_d.len() >= 2 {
        println!(
            "  DiskANN slow-preprocessing:   {:.2}   — theory ~2+ (the barrier Thm 1.1 breaks)",
            loglog_slope(&slow_x, &slow_d)
        );
    }
    println!("\nAll three G_net builders produce identical graphs (asserted in tests).");

    // ---- Offline half: persist the largest index --------------------------
    if let Some(path) = value_flag("--save-index") {
        let n = *ns.last().unwrap();
        // Same generator and seed as the sweep row, on the plain metric (the
        // snapshot stores the metric tag, not the Counting instrumentation).
        let data =
            workloads::uniform_cube_flat(n, 2, (n as f64).sqrt() * 4.0, 7).into_dataset(Euclidean);
        let g = GNet::build_fast(&data, 1.0);
        let params = g.params;
        let engine = QueryEngine::new(g.graph, data);
        engine
            .save_with(&path, 0, Some(params.into()))
            .expect("saving the index snapshot failed");
        let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        println!(
            "\nindex saved: {path} (n = {n}, {} edges, {bytes} bytes) — serve it with \
             `exp_t11_query --load-index {path}`",
            engine.graph().edge_count()
        );
    }
}
