//! **Experiment Fig 3–6 / Lemma 5.1** — the θ-graph geometry of Section 5.1
//! and Appendix E, executed:
//!
//! * cone-family quality: count `O((1/θ)^{d-1})`, covering gap `<= θ/2`;
//! * Lemma 5.1 operationally: the `(ε/32)`-graph passes the exhaustive
//!   `(1+ε)`-PG check; coarser θ values show where the worst-case constant
//!   starts to matter;
//! * size: θ-graph edges per point vs `1/θ` (linear in 2-d — the
//!   `(1/θ)^{d-1}` cone bound).
//!
//! Run: `cargo run --release -p pg-bench --bin exp_theta_pg [--full]`

#![forbid(unsafe_code)]

use pg_bench::{fmt, full_mode, Table};
use pg_core::{check_navigable, ConeSet, ThetaGraph};
use pg_metric::Euclidean;
use pg_workloads as workloads;

fn main() {
    println!("# Fig 3-6 / Lemma 5.1: cone families and theta-graph navigability\n");

    // ---- Cone family quality ------------------------------------------------
    let mut t = Table::new(&["d", "θ", "cones", "covering gap", "θ/2 ceiling"]);
    for (d, theta) in [
        (2usize, 0.5f64),
        (2, 0.125),
        (2, 1.0 / 32.0),
        (3, 0.6),
        (3, 0.3),
        (4, 0.9),
    ] {
        let cs = ConeSet::covering(d, theta);
        let gap = cs.covering_gap(if full_mode() { 20000 } else { 4000 }, 77);
        assert!(gap <= theta / 2.0 + 1e-9, "covering property violated");
        t.row(vec![
            d.to_string(),
            fmt(theta, 4),
            cs.count().to_string(),
            fmt(gap, 4),
            fmt(theta / 2.0, 4),
        ]);
    }
    t.print();
    println!("\nEvery family covers R^d within θ/2 of an axis (the two properties the");
    println!("proof of Lemma 5.1 needs), with O((1/θ)^(d-1)) cones.\n");

    // ---- Lemma 5.1: navigability vs θ ---------------------------------------
    let n = if full_mode() { 600 } else { 250 };
    let data = workloads::uniform_cube_flat(n, 2, 50.0, 13).into_dataset(Euclidean);
    let queries = workloads::uniform_queries_flat(40, 2, -5.0, 55.0, 14).into_rows();
    let eps = 1.0;

    let mut t = Table::new(&["θ", "θ vs ε/32", "cones", "edges/p", "(1+ε)-navigable?"]);
    for theta in [
        eps / 32.0,
        eps / 16.0,
        eps / 8.0,
        eps / 4.0,
        eps / 2.0,
        1.2f64,
    ] {
        let tg = ThetaGraph::build(&data, theta.min(1.5));
        let nav = check_navigable(&tg.graph, &data, &queries, eps).is_ok();
        t.row(vec![
            fmt(theta, 4),
            if (theta - eps / 32.0).abs() < 1e-12 {
                "= (Lemma 5.1)".into()
            } else {
                format!("{}x", fmt(theta / (eps / 32.0), 0))
            },
            tg.cone_count.to_string(),
            fmt(tg.graph.edge_count() as f64 / n as f64, 1),
            if nav { "yes".into() } else { "NO".to_string() },
        ]);
        if (theta - eps / 32.0).abs() < 1e-12 {
            assert!(nav, "Lemma 5.1 must hold at θ = ε/32");
        }
    }
    t.print();
    println!("\nθ = ε/32 always passes (Lemma 5.1); moderately coarser θ usually passes");
    println!("on random data (the /32 is worst-case); very coarse θ eventually fails.\n");

    // ---- Size vs 1/θ ---------------------------------------------------------
    let mut t = Table::new(&["1/θ", "cones", "edges/p", "edges/p per cone"]);
    for inv in [4.0f64, 8.0, 16.0, 32.0] {
        let tg = ThetaGraph::build(&data, 1.0 / inv);
        t.row(vec![
            fmt(inv, 0),
            tg.cone_count.to_string(),
            fmt(tg.graph.edge_count() as f64 / n as f64, 1),
            fmt(
                tg.graph.edge_count() as f64 / n as f64 / tg.cone_count as f64,
                3,
            ),
        ]);
    }
    t.print();
    println!("\nEdges per point grow linearly in 1/θ — the (1/θ)^(d-1) bound at d = 2 —");
    println!("and never exceed one per cone (nearest-point-on-ray is unique).");
}
