//! **Perf report** — the PR-over-PR performance trajectory, machine-readable.
//!
//! Runs a fixed-seed micro-suite and writes `BENCH_<label>.json`:
//!
//! 1. **Kernels** — ns per distance evaluation for `d ∈ {8, 32, 128}`:
//!    the flat-layout unrolled kernels ([`pg_metric::lp`]) against the
//!    seed's nested-`Vec` scalar loops (`*_scalar` on `Vec<Vec<f64>>` rows),
//!    plus a flat-scalar column so layout and unrolling gains are
//!    attributable separately.
//! 2. **Queries** — greedy and beam queries/sec on an `n = 8000` uniform
//!    workload, flat vs nested storage routing the *same* graph; the bin
//!    asserts both layouts return identical results and distance counts
//!    before timing them.
//!
//! JSON schema (`schema_version` 1, see README § Performance):
//!
//! ```json
//! {
//!   "schema_version": 1, "label": "pr3", "smoke": false, "threads": 1,
//!   "kernels": [
//!     {"kernel": "l2_squared", "d": 32, "flat_unrolled_ns": 0.0,
//!      "flat_scalar_ns": 0.0, "nested_scalar_ns": 0.0, "speedup": 0.0}
//!   ],
//!   "queries": {
//!     "n": 8000, "d": 2, "m": 1024, "ef": 16, "k": 1,
//!     "greedy": {"flat_qps": 0.0, "nested_qps": 0.0, "speedup": 0.0,
//!                "dist_comps": 0},
//!     "beam": {"flat_qps": 0.0, "nested_qps": 0.0, "speedup": 0.0,
//!              "dist_comps": 0}
//!   }
//! }
//! ```
//!
//! `speedup` is always `nested / flat` (higher is better for flat). Later
//! PRs append new `kernels` entries or sibling objects under `queries`
//! rather than renaming fields, so trajectory tooling can diff labels.
//!
//! Run: `cargo run --release -p pg_bench --bin exp_perf_report
//! [--smoke] [--label NAME] [--threads N]`

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

use pg_bench::{fmt, init_threads, spread_start, value_flag, Table};
use pg_core::{GNet, QueryEngine};
use pg_metric::lp::{l1, l1_scalar, l2_scalar, l2_squared, l2_squared_scalar, linf, linf_scalar};
use pg_metric::{Dataset, Euclidean};
use pg_workloads as workloads;

/// Times `evals` kernel evaluations, best of three passes, in ns/eval.
fn time_ns_per_eval(evals: u64, mut pass: impl FnMut() -> f64) -> f64 {
    let mut sink = 0.0;
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        sink += pass();
        best = best.min(t0.elapsed().as_nanos() as f64 / evals as f64);
    }
    black_box(sink);
    best
}

/// One timing pass over flat storage: `reps` strided sweeps of all `n`
/// points against pseudo-random partners. Generic over the kernel so each
/// instantiation monomorphizes and the kernel inlines — a `dyn` call here
/// would swamp the kernels this bin exists to measure. `n` must be a power
/// of two.
fn sweep_flat<K: Fn(&[f64], &[f64]) -> f64>(fp: &pg_metric::FlatPoints, reps: usize, k: K) -> f64 {
    let n = fp.len();
    let mask = n - 1;
    let mut acc = 0.0;
    for r in 0..reps {
        for i in 0..n {
            let j = i.wrapping_mul(2654435761).wrapping_add(r * 97) & mask;
            acc += k(fp.row(i), fp.row(j));
        }
    }
    acc
}

/// [`sweep_flat`] over the seed's nested layout (same pair schedule).
fn sweep_nested<K: Fn(&[f64], &[f64]) -> f64>(rows: &[Vec<f64>], reps: usize, k: K) -> f64 {
    let n = rows.len();
    let mask = n - 1;
    let mut acc = 0.0;
    for r in 0..reps {
        for i in 0..n {
            let j = i.wrapping_mul(2654435761).wrapping_add(r * 97) & mask;
            acc += k(&rows[i], &rows[j]);
        }
    }
    acc
}

struct KernelRow {
    kernel: &'static str,
    d: usize,
    flat_unrolled_ns: f64,
    flat_scalar_ns: f64,
    nested_scalar_ns: f64,
}

fn main() {
    let threads = init_threads();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let label_flag = value_flag("--label");
    let label_is_default = label_flag.is_none();
    let label = label_flag.unwrap_or_else(|| if smoke { "smoke".into() } else { "pr3".into() });
    println!("# perf report: flat+unrolled kernels and query throughput (label: {label})\n");

    // ---- 1. Kernel micro-suite ---------------------------------------------
    let n_pts = 512usize;
    let mut kernel_rows: Vec<KernelRow> = Vec::new();
    let mut t = Table::new(&[
        "kernel",
        "d",
        "flat+unrolled ns",
        "flat scalar ns",
        "nested scalar ns",
        "speedup",
    ]);
    for d in [8usize, 32, 128] {
        let flat = workloads::uniform_cube_flat(n_pts, d, 10.0, 1234 + d as u64);
        let nested = flat.to_nested();
        // Keep total coordinate work roughly constant across dimensions.
        let reps = (if smoke { 2_000_000 } else { 60_000_000 } / (n_pts * d)).max(4);
        let evals = (reps * n_pts) as u64;

        // One macro arm per kernel pair: each expansion monomorphizes the
        // sweep with the concrete kernel inlined.
        macro_rules! bench_pair {
            ($name:literal, $unrolled:path, $scalar:path) => {{
                let flat_unrolled_ns =
                    time_ns_per_eval(evals, || sweep_flat(&flat, reps, $unrolled));
                let flat_scalar_ns = time_ns_per_eval(evals, || sweep_flat(&flat, reps, $scalar));
                let nested_scalar_ns =
                    time_ns_per_eval(evals, || sweep_nested(&nested, reps, $scalar));
                t.row(vec![
                    $name.into(),
                    d.to_string(),
                    fmt(flat_unrolled_ns, 2),
                    fmt(flat_scalar_ns, 2),
                    fmt(nested_scalar_ns, 2),
                    format!("{:.2}x", nested_scalar_ns / flat_unrolled_ns),
                ]);
                kernel_rows.push(KernelRow {
                    kernel: $name,
                    d,
                    flat_unrolled_ns,
                    flat_scalar_ns,
                    nested_scalar_ns,
                });
            }};
        }
        bench_pair!("l2_squared", l2_squared, l2_squared_scalar);
        bench_pair!("l1", l1, l1_scalar);
        bench_pair!("linf", linf, linf_scalar);

        // The seed's full Euclidean kernel also paid an eager sqrt; report
        // the headline end-to-end comparison (surrogate vs seed l2).
        let flat_sq_ns = time_ns_per_eval(evals, || sweep_flat(&flat, reps, l2_squared));
        let nested_l2_ns = time_ns_per_eval(evals, || sweep_nested(&nested, reps, l2_scalar));
        t.row(vec![
            "l2 (seed: +sqrt)".into(),
            d.to_string(),
            fmt(flat_sq_ns, 2),
            "-".into(),
            fmt(nested_l2_ns, 2),
            format!("{:.2}x", nested_l2_ns / flat_sq_ns),
        ]);
        kernel_rows.push(KernelRow {
            kernel: "l2_vs_seed_sqrt",
            d,
            flat_unrolled_ns: flat_sq_ns,
            flat_scalar_ns: f64::NAN,
            nested_scalar_ns: nested_l2_ns,
        });
    }
    t.print();
    println!("\n(speedup = nested scalar / flat+unrolled; the l2 surrogate row includes");
    println!("the sqrt the comparison path no longer pays per candidate)\n");

    // ---- 2. Query throughput, flat vs nested -------------------------------
    let n = if smoke { 400 } else { 8000 };
    let m = if smoke { 64 } else { 1024 };
    let (ef, k) = (16usize, 1usize);
    let side = (n as f64).sqrt() * 4.0;
    let flat = workloads::uniform_cube_flat(n, 2, side, 77);
    let nested_pts = flat.to_nested();
    let q_flat = workloads::uniform_queries_flat(m, 2, 0.0, side, 78).into_rows();
    let q_nested = workloads::uniform_queries(m, 2, 0.0, side, 78);
    let starts: Vec<u32> = (0..m).map(|i| spread_start(i, n)).collect();

    let flat_data = flat.into_dataset(Euclidean);
    let nested_data = Dataset::new(nested_pts, Euclidean);
    let g = GNet::build_fast(&flat_data, 1.0);
    let g_nested = GNet::build_fast(&nested_data, 1.0);
    assert_eq!(
        g.graph, g_nested.graph,
        "layout must not change the built graph"
    );
    let flat_engine = QueryEngine::new(g.graph.clone(), flat_data).with_threads(threads);
    let nested_engine = QueryEngine::new(g.graph, nested_data).with_threads(threads);

    // Correctness gate before timing: identical answers and identical
    // distance accounting across layouts.
    let bf = flat_engine.batch_greedy(&starts, &q_flat);
    let bn = nested_engine.batch_greedy(&starts, &q_nested);
    assert_eq!(
        bf.dist_comps, bn.dist_comps,
        "layouts diverged in dist accounting"
    );
    for (a, b) in bf.outcomes.iter().zip(bn.outcomes.iter()) {
        assert_eq!(a.result, b.result, "layouts diverged in greedy results");
        assert_eq!(a.result_dist, b.result_dist);
    }
    let greedy_comps = bf.dist_comps;
    let ef_flat = flat_engine.batch_beam(&starts, &q_flat, ef, k);
    let ef_nested = nested_engine.batch_beam(&starts, &q_nested, ef, k);
    assert_eq!(
        ef_flat.results, ef_nested.results,
        "layouts diverged in beam results"
    );
    let beam_comps = ef_flat.dist_comps;

    let time_qps = |f: &mut dyn FnMut() -> u64| {
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let t0 = Instant::now();
            black_box(f());
            best = best.min(t0.elapsed().as_secs_f64());
        }
        m as f64 / best
    };
    let greedy_flat_qps = time_qps(&mut || flat_engine.batch_greedy(&starts, &q_flat).dist_comps);
    let greedy_nested_qps =
        time_qps(&mut || nested_engine.batch_greedy(&starts, &q_nested).dist_comps);
    let beam_flat_qps =
        time_qps(&mut || flat_engine.batch_beam(&starts, &q_flat, ef, k).dist_comps);
    let beam_nested_qps = time_qps(&mut || {
        nested_engine
            .batch_beam(&starts, &q_nested, ef, k)
            .dist_comps
    });

    let mut t = Table::new(&["routine", "flat q/s", "nested q/s", "speedup", "dists"]);
    t.row(vec![
        "greedy".into(),
        fmt(greedy_flat_qps, 0),
        fmt(greedy_nested_qps, 0),
        format!("{:.2}x", greedy_flat_qps / greedy_nested_qps),
        greedy_comps.to_string(),
    ]);
    t.row(vec![
        format!("beam ef={ef}"),
        fmt(beam_flat_qps, 0),
        fmt(beam_nested_qps, 0),
        format!("{:.2}x", beam_flat_qps / beam_nested_qps),
        beam_comps.to_string(),
    ]);
    t.print();
    println!("\n{m} queries on n = {n}, {threads} thread(s); identical results and distance");
    println!("totals across layouts asserted before timing.");

    // ---- 3. JSON trajectory artifact ---------------------------------------
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"schema_version\": 1,");
    let _ = writeln!(j, "  \"label\": \"{label}\",");
    let _ = writeln!(j, "  \"smoke\": {smoke},");
    let _ = writeln!(j, "  \"threads\": {threads},");
    let _ = writeln!(j, "  \"kernels\": [");
    for (i, r) in kernel_rows.iter().enumerate() {
        let comma = if i + 1 < kernel_rows.len() { "," } else { "" };
        let flat_scalar = if r.flat_scalar_ns.is_nan() {
            "null".to_string()
        } else {
            format!("{:.3}", r.flat_scalar_ns)
        };
        let _ = writeln!(
            j,
            "    {{\"kernel\": \"{}\", \"d\": {}, \"flat_unrolled_ns\": {:.3}, \"flat_scalar_ns\": {}, \"nested_scalar_ns\": {:.3}, \"speedup\": {:.3}}}{}",
            r.kernel,
            r.d,
            r.flat_unrolled_ns,
            flat_scalar,
            r.nested_scalar_ns,
            r.nested_scalar_ns / r.flat_unrolled_ns,
            comma
        );
    }
    let _ = writeln!(j, "  ],");
    let _ = writeln!(j, "  \"queries\": {{");
    let _ = writeln!(
        j,
        "    \"n\": {n}, \"d\": 2, \"m\": {m}, \"ef\": {ef}, \"k\": {k},"
    );
    let _ = writeln!(
        j,
        "    \"greedy\": {{\"flat_qps\": {:.1}, \"nested_qps\": {:.1}, \"speedup\": {:.3}, \"dist_comps\": {}}},",
        greedy_flat_qps,
        greedy_nested_qps,
        greedy_flat_qps / greedy_nested_qps,
        greedy_comps
    );
    let _ = writeln!(
        j,
        "    \"beam\": {{\"flat_qps\": {:.1}, \"nested_qps\": {:.1}, \"speedup\": {:.3}, \"dist_comps\": {}}}",
        beam_flat_qps,
        beam_nested_qps,
        beam_flat_qps / beam_nested_qps,
        beam_comps
    );
    let _ = writeln!(j, "  }}");
    let _ = writeln!(j, "}}");

    match pg_bench::write_bench_artifact(&label, label_is_default, &j) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    }
}
