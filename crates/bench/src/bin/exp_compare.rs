//! **Experiment CMP** — end-to-end comparison across every index in the
//! workspace on the standard workload suite: construction cost (distance
//! computations — the paper's model — and seconds), size, query cost and
//! answer quality.
//!
//! Quality is scored through `pg_eval`: exact [`GroundTruth`] (parallel
//! brute force) plus the tie-safe [`recall_at_k`] — a returned point as
//! close as the true NN counts as a hit even if brute force broke the tie
//! toward another id — and the graded [`mean_distance_ratio`] column
//! (`d@1`, mean returned-vs-exact distance ratio), which separates "missed
//! by a hair" from "landed in the wrong cluster" where recall alone cannot.
//! `exp_recall` extends this single operating point into full
//! recall/QPS frontiers (see `EXPERIMENTS.md`).
//!
//! Queries run as one batch per index through the parallel
//! [`QueryEngine`]; per-query answers and distance totals are identical to
//! the sequential loops for any thread count.
//!
//! Run: `cargo run --release -p pg_bench --bin exp_compare
//! [--full] [--threads N]`

#![forbid(unsafe_code)]

use std::time::Instant;

use pg_baselines::{nsw, slow_preprocessing, vamana, Hnsw, HnswParams, NswParams, VamanaParams};
use pg_bench::{fmt, full_mode, init_threads, Table};
use pg_core::{GNet, Graph, MergedGraph, MergedParams, QueryEngine};
use pg_eval::{mean_distance_ratio, recall_at_k, GroundTruth};
use pg_metric::{Counting, Euclidean};
use pg_workloads as workloads;

/// Mean recall@1 and mean distance ratio of per-query `(id, dist)` answers
/// against exact ground truth.
fn quality(truth: &GroundTruth, answers: &[(u32, f64)]) -> (f64, f64) {
    let m = answers.len() as f64;
    let recall: f64 = answers
        .iter()
        .enumerate()
        .map(|(q, &a)| recall_at_k(truth, q, &[a]))
        .sum();
    let ratio: f64 = answers
        .iter()
        .enumerate()
        .map(|(q, &a)| mean_distance_ratio(truth, q, &[a]))
        .sum();
    (recall / m, ratio / m)
}

fn main() {
    let threads = init_threads();
    let n = if full_mode() { 4000 } else { 1200 };
    println!("# CMP: all indexes on the standard suite (n = {n}, {threads} thread(s))\n");

    for (wname, points) in workloads::standard_suite_flat(n, 99) {
        let dim = points.dim();
        let queries = workloads::perturbed_queries_flat(&points, 80, 0.5, 17).into_rows();
        let data = points.into_dataset(Counting::new(Euclidean));
        let truth = GroundTruth::compute(&data, &queries, 1);
        let greedy_starts: Vec<u32> = (0..queries.len()).map(|i| ((i * 131) % n) as u32).collect();
        let beam_starts: Vec<u32> = vec![0; queries.len()];
        data.metric().reset();

        println!("## workload: {wname} (d = {dim})\n");
        let mut table = Table::new(&[
            "index",
            "build dists",
            "build s",
            "edges",
            "dists/q",
            "recall@1",
            "d@1",
            "guarantee",
        ]);

        let greedy_row =
            |table: &mut Table, name: &str, g: &Graph, bd: u64, bs: f64, guar: &str| {
                // Engine clones share the Counting metric's counter, so the
                // experiment's take()-based phases keep working unchanged.
                let engine = QueryEngine::new(g.clone(), data.clone());
                let batch = engine.batch_greedy(&greedy_starts, &queries);
                let answers: Vec<(u32, f64)> = batch
                    .outcomes
                    .iter()
                    .map(|o| (o.result, o.result_dist))
                    .collect();
                let (recall, ratio) = quality(&truth, &answers);
                table.row(vec![
                    name.into(),
                    bd.to_string(),
                    fmt(bs, 2),
                    g.edge_count().to_string(),
                    fmt(batch.dist_comps as f64 / queries.len() as f64, 0),
                    format!("{:.1}%", 100.0 * recall),
                    fmt(ratio, 3),
                    guar.into(),
                ]);
            };

        let beam_row = |table: &mut Table, name: &str, g: &Graph, bd: u64, bs: f64| {
            let engine = QueryEngine::new(g.clone(), data.clone());
            let batch = engine.batch_beam(&beam_starts, &queries, 12, 1);
            let answers: Vec<(u32, f64)> = batch.results.iter().map(|res| res[0]).collect();
            let (recall, ratio) = quality(&truth, &answers);
            table.row(vec![
                name.into(),
                bd.to_string(),
                fmt(bs, 2),
                g.edge_count().to_string(),
                fmt(batch.dist_comps as f64 / queries.len() as f64, 0),
                format!("{:.1}%", 100.0 * recall),
                fmt(ratio, 3),
                "none".into(),
            ]);
        };

        let t0 = Instant::now();
        let gnet = GNet::build_fast(&data, 1.0);
        let (bd, bs) = (data.metric().take(), t0.elapsed().as_secs_f64());
        greedy_row(
            &mut table,
            "G_net fast (Thm1.1)",
            &gnet.graph,
            bd,
            bs,
            "2-ANN any start",
        );
        data.metric().reset();

        let t0 = Instant::now();
        let ct = GNet::build_covertree(&data, 1.0);
        let (bd, bs) = (data.metric().take(), t0.elapsed().as_secs_f64());
        greedy_row(
            &mut table,
            "G_net Sec2.4 build",
            &ct.graph,
            bd,
            bs,
            "2-ANN any start",
        );
        data.metric().reset();

        let theta = if dim <= 2 { 0.25 } else { 0.7 };
        let t0 = Instant::now();
        let merged = MergedGraph::build(&data, MergedParams::new(1.0).with_theta(theta));
        let (bd, bs) = (data.metric().take(), t0.elapsed().as_secs_f64());
        greedy_row(
            &mut table,
            "merged (Thm1.3)",
            &merged.graph,
            bd,
            bs,
            "2-ANN any start",
        );
        data.metric().reset();

        if n <= 2500 || full_mode() {
            let t0 = Instant::now();
            let slow = slow_preprocessing(&data, 3.0);
            let (bd, bs) = (data.metric().take(), t0.elapsed().as_secs_f64());
            greedy_row(
                &mut table,
                "DiskANN-slow α=3",
                &slow,
                bd,
                bs,
                "2-ANN any start",
            );
            data.metric().reset();
        }

        let t0 = Instant::now();
        let vg = vamana(&data, VamanaParams::default());
        let (bd, bs) = (data.metric().take(), t0.elapsed().as_secs_f64());
        beam_row(&mut table, "Vamana beam12", &vg, bd, bs);
        data.metric().reset();

        let t0 = Instant::now();
        let ng = nsw(&data, NswParams::default());
        let (bd, bs) = (data.metric().take(), t0.elapsed().as_secs_f64());
        beam_row(&mut table, "NSW beam12", &ng, bd, bs);
        data.metric().reset();

        let t0 = Instant::now();
        let h = Hnsw::build(&data, HnswParams::default());
        let (bd, bs) = (data.metric().take(), t0.elapsed().as_secs_f64());
        let mut comps = 0u64;
        let mut answers: Vec<(u32, f64)> = Vec::with_capacity(queries.len());
        for q in &queries {
            let (res, c) = h.search(&data, q, 12, 1);
            comps += c;
            answers.push(res[0]);
        }
        data.metric().reset();
        let (recall, ratio) = quality(&truth, &answers);
        table.row(vec![
            "HNSW ef12".into(),
            bd.to_string(),
            fmt(bs, 2),
            h.total_edges().to_string(),
            fmt(comps as f64 / queries.len() as f64, 0),
            format!("{:.1}%", 100.0 * recall),
            fmt(ratio, 3),
            "none".into(),
        ]);

        table.row(vec![
            "brute force".into(),
            "0".into(),
            "-".into(),
            "-".into(),
            n.to_string(),
            "100.0%".into(),
            "1.000".into(),
            "exact".into(),
        ]);

        table.print();
        println!();
    }

    println!("Reading guide: who wins and why —");
    println!("* recall: the theory graphs (G_net/merged/DiskANN-slow) guarantee 2-ANN from");
    println!("  any start; the practical indexes trade that for fewer edges and distances.");
    println!("* build: G_net-fast is near-linear; DiskANN-slow is the quadratic barrier.");
    println!("* size: merged < G_net on spread data (Thm 1.3); HNSW/Vamana are smallest");
    println!("  because they abandon worst-case guarantees (Thm 1.2 explains why they must).");
}
