//! **Experiment T1.1-query** — Theorem 1.1 query bound:
//! greedy on `G_net` finds a `(1+ε)`-ANN within `O((1/ε)^λ log² Δ)`
//! distance computations, from any start vertex.
//!
//! Tables: query cost vs `n` (must stay ~flat while brute force grows
//! linearly), hop counts vs the proven `h` ceiling, cost vs `ε`, and
//! batched-query throughput vs thread count (the engine's answers and
//! distance totals are identical at every thread count; only the wall
//! clock moves).
//!
//! Run: `cargo run --release -p pg_bench --bin exp_t11_query
//! [--full] [--threads N] [--load-index PATH]`
//!
//! `--load-index PATH` makes the throughput section the **online half** of
//! the experiment pair: instead of rebuilding, the engine is loaded from a
//! snapshot persisted by `exp_t11_build --save-index PATH` (the loaded
//! engine's answers are bit-identical to a fresh build — pinned by
//! `tests/snapshot_parity.rs`). The scaling tables earlier in the binary
//! always build their own per-`n` indexes.

#![forbid(unsafe_code)]

use std::time::Instant;

use pg_bench::{
    fmt, full_mode, init_threads, measure_greedy_batch, spread_start, value_flag, Table,
};
use pg_core::{GNet, QueryEngine};
use pg_metric::{Euclidean, FlatRow};
use pg_workloads as workloads;

fn main() {
    let threads = init_threads();
    println!("# T1.1-query: greedy cost = O((1/eps)^lambda * log^2 Delta), any start");
    println!("(query batches sharded over {threads} thread(s))\n");

    // ---- Query cost vs n ----------------------------------------------------
    let ns: Vec<usize> = if full_mode() {
        vec![1000, 2000, 4000, 8000, 16000, 32000]
    } else {
        vec![500, 1000, 2000, 4000, 8000]
    };
    let mut t = Table::new(&[
        "n",
        "logΔ",
        "dists/query",
        "hops",
        "h+1 ceiling",
        "worst ratio",
        "brute force",
    ]);
    for &n in &ns {
        // Constant density so log Δ grows gently with n.
        let data =
            workloads::uniform_cube_flat(n, 2, (n as f64).sqrt() * 4.0, 21).into_dataset(Euclidean);
        let g = GNet::build_fast(&data, 1.0);
        let log_aspect = g.hierarchy.log_aspect();
        let h = g.hierarchy.h();
        let queries =
            workloads::uniform_queries_flat(60, 2, 0.0, (n as f64).sqrt() * 4.0, 22).into_rows();
        let engine = QueryEngine::new(g.graph, data);
        let (dists, hops, worst) = measure_greedy_batch(&engine, &queries);
        t.row(vec![
            n.to_string(),
            log_aspect.to_string(),
            fmt(dists, 0),
            fmt(hops, 1),
            (h + 1).to_string(),
            fmt(worst, 3),
            n.to_string(),
        ]);
    }
    t.print();
    println!("\nShape: dists/query grows ~log^2 n (polylog) while brute force grows ~n;");
    println!("hops never exceed the proven h+1 ceiling; worst ratio <= 1+ε = 2.\n");

    // ---- Query cost vs epsilon ----------------------------------------------
    let n = if full_mode() { 4000 } else { 2000 };
    let data = workloads::uniform_cube_flat(n, 2, 260.0, 23).into_dataset(Euclidean);
    let queries = workloads::uniform_queries_flat(40, 2, -20.0, 280.0, 24).into_rows();
    let mut t = Table::new(&[
        "ε",
        "φ",
        "dists/query",
        "hops",
        "worst ratio",
        "guarantee 1+ε",
    ]);
    for eps in [1.0, 0.5, 0.25] {
        let g = GNet::build_fast(&data, eps);
        let phi = g.params.phi;
        let engine = QueryEngine::new(g.graph, data.clone());
        let (dists, hops, worst) = measure_greedy_batch(&engine, &queries);
        t.row(vec![
            fmt(eps, 2),
            fmt(phi, 0),
            fmt(dists, 0),
            fmt(hops, 1),
            fmt(worst, 4),
            fmt(1.0 + eps, 2),
        ]);
    }
    t.print();
    println!("\nSmaller ε buys a tighter worst ratio at ~φ^λ more distance work —");
    println!("exactly the (1/ε)^λ trade-off of Theorem 1.1.\n");

    // ---- Batched throughput vs thread count ---------------------------------
    let m = if full_mode() { 4096 } else { 1024 };
    let (engine, n, dims) = match value_flag("--load-index") {
        Some(path) => {
            // Online half: serve a persisted index instead of rebuilding.
            let t0 = Instant::now();
            let (engine, meta) = QueryEngine::<FlatRow, Euclidean>::load_with_meta(&path)
                .expect("loading the index snapshot failed");
            let eps = meta.build.map_or("?".to_string(), |b| fmt(b.epsilon, 2));
            println!(
                "index loaded from {path} in {} s (n = {}, d = {}, built with eps = {eps})",
                fmt(t0.elapsed().as_secs_f64(), 3),
                meta.n,
                meta.dims
            );
            let n = meta.n as usize;
            (engine, n, meta.dims as usize)
        }
        None => {
            let n = if full_mode() { 16000 } else { 8000 };
            let data = workloads::uniform_cube_flat(n, 2, (n as f64).sqrt() * 4.0, 25)
                .into_dataset(Euclidean);
            let g = GNet::build_fast(&data, 1.0);
            (QueryEngine::new(g.graph, data), n, 2)
        }
    };
    let queries =
        workloads::uniform_queries_flat(m, dims, 0.0, (n as f64).sqrt() * 4.0, 26).into_rows();
    let starts: Vec<u32> = (0..m).map(|i| spread_start(i, n)).collect();

    let mut t = Table::new(&["threads", "batch dists", "wall-clock s", "queries/s"]);
    let mut reference_dists: Option<u64> = None;
    let mut sweep: Vec<usize> = vec![1, 2, 4];
    if !sweep.contains(&threads) {
        sweep.push(threads);
    }
    for &tc in &sweep {
        let e = engine.clone().with_threads(tc);
        let t0 = Instant::now();
        let batch = e.batch_greedy(&starts, &queries);
        let secs = t0.elapsed().as_secs_f64();
        // The engine contract: thread count never changes the work done.
        let expect = *reference_dists.get_or_insert(batch.dist_comps);
        assert_eq!(
            batch.dist_comps, expect,
            "distance totals must not depend on threads"
        );
        t.row(vec![
            tc.to_string(),
            batch.dist_comps.to_string(),
            fmt(secs, 3),
            fmt(m as f64 / secs, 0),
        ]);
    }
    t.print();
    println!("\n{m} queries on n = {n}: identical batch distance totals at every thread");
    println!("count (asserted above); wall-clock scales with the cores available.");
}
