//! **Experiment T1.1-query** — Theorem 1.1 query bound:
//! greedy on `G_net` finds a `(1+ε)`-ANN within `O((1/ε)^λ log² Δ)`
//! distance computations, from any start vertex.
//!
//! Tables: query cost vs `n` (must stay ~flat while brute force grows
//! linearly), hop counts vs the proven `h` ceiling, and cost vs `ε`.
//!
//! Run: `cargo run --release -p pg-bench --bin exp_t11_query [--full]`

use pg_bench::{fmt, full_mode, measure_greedy, Table};
use pg_core::GNet;
use pg_metric::{Dataset, Euclidean};
use pg_workloads as workloads;

fn main() {
    println!("# T1.1-query: greedy cost = O((1/eps)^lambda * log^2 Delta), any start\n");

    // ---- Query cost vs n ----------------------------------------------------
    let ns: Vec<usize> = if full_mode() {
        vec![1000, 2000, 4000, 8000, 16000, 32000]
    } else {
        vec![500, 1000, 2000, 4000, 8000]
    };
    let mut t = Table::new(&[
        "n",
        "logΔ",
        "dists/query",
        "hops",
        "h+1 ceiling",
        "worst ratio",
        "brute force",
    ]);
    for &n in &ns {
        // Constant density so log Δ grows gently with n.
        let pts = workloads::uniform_cube(n, 2, (n as f64).sqrt() * 4.0, 21);
        let data = Dataset::new(pts, Euclidean);
        let g = GNet::build_fast(&data, 1.0);
        let queries = workloads::uniform_queries(60, 2, 0.0, (n as f64).sqrt() * 4.0, 22);
        let (dists, hops, worst) = measure_greedy(&g.graph, &data, &queries);
        t.row(vec![
            n.to_string(),
            g.hierarchy.log_aspect().to_string(),
            fmt(dists, 0),
            fmt(hops, 1),
            (g.hierarchy.h() + 1).to_string(),
            fmt(worst, 3),
            n.to_string(),
        ]);
    }
    t.print();
    println!("\nShape: dists/query grows ~log^2 n (polylog) while brute force grows ~n;");
    println!("hops never exceed the proven h+1 ceiling; worst ratio <= 1+ε = 2.\n");

    // ---- Query cost vs epsilon ----------------------------------------------
    let n = if full_mode() { 4000 } else { 2000 };
    let pts = workloads::uniform_cube(n, 2, 260.0, 23);
    let data = Dataset::new(pts, Euclidean);
    let queries = workloads::uniform_queries(40, 2, -20.0, 280.0, 24);
    let mut t = Table::new(&[
        "ε",
        "φ",
        "dists/query",
        "hops",
        "worst ratio",
        "guarantee 1+ε",
    ]);
    for eps in [1.0, 0.5, 0.25] {
        let g = GNet::build_fast(&data, eps);
        let (dists, hops, worst) = measure_greedy(&g.graph, &data, &queries);
        t.row(vec![
            fmt(eps, 2),
            fmt(g.params.phi, 0),
            fmt(dists, 0),
            fmt(hops, 1),
            fmt(worst, 4),
            fmt(1.0 + eps, 2),
        ]);
    }
    t.print();
    println!("\nSmaller ε buys a tighter worst ratio at ~φ^λ more distance work —");
    println!("exactly the (1/ε)^λ trade-off of Theorem 1.1.");
}
