//! **Experiment LB1 / Figure 1** — Theorem 1.2(1): on the Section 3 tree
//! instance, any 2-PG needs `|P1| × |P2| = Ω(n log Δ)` edges, regardless of
//! query time.
//!
//! The table sweeps `Δ` (with `n = sqrt(2Δ)`, the extreme of the admissible
//! range) and reports: the forced edge count, the `n·⌈h/2⌉` formula, the
//! edge count of the paper's own `G_net` (a valid 2-PG, so it must pay), and
//! adversarial spot checks that removing any required edge breaks
//! navigability.
//!
//! Run: `cargo run --release -p pg-bench --bin exp_lb1_tree [--full]`

#![forbid(unsafe_code)]

use pg_bench::{fmt, full_mode, Table};
use pg_core::{GNet, Graph};
use pg_hardness::TreeInstance;

fn main() {
    println!("# LB1 (Thm 1.2(1), Fig 1): forced edges on the tree instance\n");

    let ks: Vec<u32> = if full_mode() {
        vec![2, 3, 4, 5, 6, 7]
    } else {
        vec![2, 3, 4, 5, 6]
    };
    let mut t = Table::new(&[
        "n",
        "Δ",
        "h=log(2Δ)",
        "|P|",
        "forced |P1||P2|",
        "n·⌈h/2⌉",
        "G_net edges",
        "G_net/forced",
    ]);
    for &k in &ks {
        let n = 1u64 << k;
        let delta = (n * n) / 2; // smallest admissible: 2Δ = n²
        let inst = TreeInstance::new(n, delta);
        let data = inst.dataset();
        let gnet = GNet::build(&data, 1.0);
        assert_eq!(
            inst.find_missing_required_edge(&gnet.graph),
            None,
            "G_net is a 2-PG: it must contain every forced edge"
        );
        let formula = n * inst.h.div_ceil(2) as u64;
        t.row(vec![
            n.to_string(),
            delta.to_string(),
            inst.h.to_string(),
            inst.len().to_string(),
            inst.required_edge_count().to_string(),
            formula.to_string(),
            gnet.graph.edge_count().to_string(),
            fmt(
                gnet.graph.edge_count() as f64 / inst.required_edge_count() as f64,
                2,
            ),
        ]);
    }
    t.print();

    println!("\nShape: forced edges = n·⌈h/2⌉ exactly (the Ω(n log Δ) bound); G_net pays");
    println!("the bound within a constant factor — its O(n log Δ) size is tight here.\n");

    // Adversarial spot check on a mid-size instance.
    let inst = TreeInstance::new(8, 32);
    let complete = Graph::complete(inst.len());
    let mut broken_count = 0;
    for (v1, v2) in inst.required_edges() {
        let g = complete.without_edge(v1, v2);
        if inst.adversary_violation(&g, v1, v2).is_some() {
            broken_count += 1;
        }
    }
    println!(
        "Failure injection (n=8, Δ=32): {}/{} required-edge deletions each break \
         2-navigability — the counting argument is airtight.",
        broken_count,
        inst.required_edge_count()
    );
    assert_eq!(broken_count as u64, inst.required_edge_count());
}
