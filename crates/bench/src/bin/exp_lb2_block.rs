//! **Experiment LB2 / Figure 2** — Theorem 1.2(2): on the Section 4 block
//! instance with `ε = 1/(2s)`, any `(1+ε)`-PG needs every ordered
//! intra-block pair: `s^d (s^d - 1) t = Ω(s^d · n)` edges.
//!
//! The table sweeps `(s, d, t)` and reports the forced count, the `Ω(s^d·n)`
//! reading, and the edge count of `G_net` built with exactly that `ε` (it
//! must contain all forced edges — asserted). Alice's adversary move is spot
//! checked by failure injection.
//!
//! Run: `cargo run --release -p pg-bench --bin exp_lb2_block [--full]`

#![forbid(unsafe_code)]

use pg_bench::{fmt, full_mode, Table};
use pg_core::{GNet, Graph};
use pg_hardness::BlockInstance;

fn main() {
    println!("# LB2 (Thm 1.2(2), Fig 2): forced intra-block edges, eps = 1/(2s)\n");

    let mut combos = vec![
        (2u32, 1u32, 2u32),
        (2, 1, 8),
        (2, 2, 2),
        (2, 2, 8),
        (3, 2, 2),
        (3, 2, 6),
        (2, 3, 2),
        (4, 2, 2),
    ];
    if full_mode() {
        combos.extend_from_slice(&[(3, 3, 2), (5, 2, 2), (4, 2, 6), (2, 2, 32)]);
    }

    let mut t = Table::new(&[
        "s",
        "d",
        "t",
        "n",
        "ε=1/(2s)",
        "forced s^d(s^d-1)t",
        "s^d·n",
        "G_net edges",
        "G_net/forced",
    ]);
    for (s, d, tt) in combos {
        let inst = BlockInstance::new(s, d, tt);
        let data = inst.data_dataset();
        let gnet = GNet::build(&data, inst.epsilon());
        assert_eq!(
            inst.find_missing_required_edge(&gnet.graph),
            None,
            "a valid (1+1/(2s))-PG must contain every intra-block pair"
        );
        let sd = (s as u64).pow(d);
        t.row(vec![
            s.to_string(),
            d.to_string(),
            tt.to_string(),
            inst.n().to_string(),
            fmt(inst.epsilon(), 3),
            inst.required_edge_count().to_string(),
            (sd * inst.n() as u64).to_string(),
            gnet.graph.edge_count().to_string(),
            fmt(
                gnet.graph.edge_count() as f64 / inst.required_edge_count() as f64,
                2,
            ),
        ]);
    }
    t.print();

    println!("\nShape: forced edges track s^d · n (the (1/ε)^λ·n term is necessary);");
    println!("with t=1 and ε = Θ(1/n^(1/λ)) this forces Ω(n²) — the worst possible.");
    println!("G_net pays the bound within a constant (its (1/ε)^λ·n term is tight).\n");

    // Alice's move, exhaustively on a small instance.
    let inst = BlockInstance::new(2, 2, 2);
    let complete = Graph::complete(inst.n());
    let mut wins = 0u64;
    for (p1, p2) in inst.required_edges() {
        let g = complete.without_edge(p1, p2);
        if inst.adversary_violation(&g, p1, p2).is_some() {
            wins += 1;
        }
    }
    println!(
        "Adversary check (s=2,d=2,t=2): Alice wins on {}/{} single-edge deletions.",
        wins,
        inst.required_edge_count()
    );
    assert_eq!(wins, inst.required_edge_count());
}
