//! **Experiment T1.3-sep** — the Euclidean separation: Theorem 1.2(1) vs
//! Theorem 1.3.
//!
//! * **Table A (general metric)** — the Section 3 tree instance: *every*
//!   2-PG is forced to carry `n · ⌈h/2⌉` edges, i.e. edges per point grow
//!   linearly in `log Δ` no matter how the graph is built. The paper's own
//!   `G_net` (a valid 2-PG) is shown paying the tax.
//! * **Table B (Euclidean)** — a fixed-`n` line-plus-satellite instance
//!   whose aspect ratio is swept over ten doublings: the merged graph of
//!   Theorem 1.3 keeps `O((1/ε)^λ · n)` edges — flat in `Δ` — while the
//!   nested `G_net` still drifts upward with `log Δ`.
//!
//! The contrast between the two slopes is the separation the paper's title
//! refers to: the `log Δ` edge tax is unavoidable in general metric spaces
//! (Table A) and removable in `R^d` (Table B).
//!
//! Run: `cargo run --release -p pg-bench --bin exp_t13_separation [--full]`

#![forbid(unsafe_code)]

use pg_bench::{fmt, full_mode, linear_slope, Table};
use pg_core::{GNet, MergedGraph, MergedParams};
use pg_hardness::TreeInstance;
use pg_metric::{Euclidean, FlatPoints};

/// Euclidean instance with exactly `n` points, `d_min = 1`,
/// `diam = spread`: a unit-spaced line of `n - 1` points plus one satellite.
fn line_plus_satellite(n: usize, spread: f64) -> FlatPoints {
    assert!(spread > 2.0 * n as f64, "satellite must clear the line");
    let mut pts = FlatPoints::with_capacity(n, 2);
    for i in 0..n - 1 {
        pts.push(&[i as f64, 0.0]);
    }
    pts.push(&[spread, 0.0]);
    pts
}

fn main() {
    println!("# T1.3-sep: the log Δ edge tax — forced in general metrics, absent in R^d\n");

    // ---- Table A: tree instance (general metric, forced growth) ------------
    println!("## A. General metric (Section 3 tree): forced edges per point vs log Δ\n");
    let ks: Vec<u32> = if full_mode() {
        vec![3, 4, 5, 6, 7, 8]
    } else {
        vec![3, 4, 5, 6, 7]
    };
    let mut t = Table::new(&["|P|", "Δ", "logΔ", "forced e/p", "G_net e/p"]);
    let mut a_ld = Vec::new();
    let mut a_forced = Vec::new();
    for &k in &ks {
        let n = 1u64 << k;
        let delta = (n * n) / 2;
        let inst = TreeInstance::new(n, delta);
        let tree_data = inst.dataset();
        let tree_gnet = GNet::build(&tree_data, 1.0);
        assert_eq!(inst.find_missing_required_edge(&tree_gnet.graph), None);
        let p = inst.len() as f64;
        let forced = inst.required_edge_count() as f64 / p;
        let ld = (delta as f64).log2();
        t.row(vec![
            inst.len().to_string(),
            delta.to_string(),
            fmt(ld, 0),
            fmt(forced, 1),
            fmt(tree_gnet.graph.edge_count() as f64 / p, 1),
        ]);
        a_ld.push(ld);
        a_forced.push(forced);
    }
    t.print();

    // ---- Table B: Euclidean line + satellite (fixed n, Δ sweep) ------------
    let n = if full_mode() { 1024 } else { 512 };
    println!("\n## B. Euclidean (line + satellite, n = {n} fixed): edges per point vs log Δ\n");
    let js: Vec<i32> = if full_mode() {
        vec![11, 13, 15, 17, 19, 21, 23]
    } else {
        vec![11, 14, 17, 20, 23]
    };
    let mut t = Table::new(&["spread", "logΔ", "τ", "merged e/p", "θ e/p", "G_net e/p"]);
    let mut b_ld = Vec::new();
    let mut b_merged = Vec::new();
    for &j in &js {
        let spread = (2.0f64).powi(j);
        let data = line_plus_satellite(n, spread).into_dataset(Euclidean);
        // Section 5.3 amplification: smallest of ~log n sampling runs.
        let merged = MergedGraph::build_best_of(&data, MergedParams::new(1.0), 10);
        let gnet = GNet::build_fast(&data, 1.0);
        let ld = j as f64;
        let me = merged.graph.edge_count() as f64 / n as f64;
        t.row(vec![
            format!("2^{j}"),
            fmt(ld, 0),
            fmt(merged.tau, 3),
            fmt(me, 1),
            fmt(merged.theta_edges as f64 / n as f64, 1),
            fmt(gnet.graph.edge_count() as f64 / n as f64, 1),
        ]);
        b_ld.push(ld);
        b_merged.push(me);
    }
    t.print();

    let f_slope = linear_slope(&a_ld, &a_forced);
    let m_slope = linear_slope(&b_ld, &b_merged);
    println!("\nedges-per-point growth per unit of log Δ:");
    println!("  A. tree metric, forced (Thm 1.2(1)): {f_slope:+.3}  — every 2-PG pays ~log Δ / 2");
    println!("  B. Euclidean, merged (Thm 1.3):      {m_slope:+.3}  — bounded: O((1/ε)^λ · n)");
    println!("     (τ = z/log Δ shrinks, so the merged size *decreases* toward the θ floor)");
    assert!(
        f_slope > 0.3,
        "tree-side growth not visible: slope {f_slope}"
    );
    assert!(
        m_slope < 0.15 * f_slope,
        "Euclidean side grows with Δ: merged slope {m_slope} vs forced slope {f_slope}"
    );
    println!("\nSeparation confirmed: the log Δ edge tax is unavoidable in general metric");
    println!("spaces but removable in R^d — the paper's Euclidean separation.");
}
