//! **Experiment RECALL** — quality–cost frontiers for every index family on
//! the standard workload suite: the recall/QPS methodology of the empirical
//! proximity-graph literature (FCPG; the monotonic-PG study), wired through
//! `pg_eval`.
//!
//! For each workload of `pg_workloads::eval_suite_flat` and each algorithm
//! (`gnet`, `theta`, `hnsw`, `vamana`, `nsw`, `brute`), the binary:
//!
//! 1. computes exact ground truth (parallel brute force, cached in
//!    `target/gt-cache/` via the fingerprinted `pg_eval` snapshot format —
//!    re-runs hit the cache);
//! 2. **asserts before timing anything** that (a) the brute-force
//!    "algorithm" scores recall@k exactly 1.0 and mean distance ratio
//!    exactly 1.0 at every axis point, and (b) every deterministic metric
//!    (recall, ratio, success@ε, dist comps, hops) is bit-identical across
//!    thread counts 1 / 2 / machine;
//! 3. walks the beam-width axis (`ef`) through the batched engine and
//!    prints one frontier table per workload;
//! 4. additionally walks the **paper's axis** — the greedy distance budget
//!    of the Section 1.1 `query` — for the `G_net` index.
//!
//! Results land in `BENCH_<label>.json`, extending the `schema_version`-1
//! trajectory format (README § Performance) with a `frontiers` section:
//!
//! ```json
//! {
//!   "schema_version": 1, "label": "pr5", "smoke": false, "threads": 1,
//!   "suite": {"n": 1200, "m": 80, "k": 10, "eps": 1.0},
//!   "frontiers": [
//!     {"workload": "uniform-2d", "algo": "gnet", "axis": "ef", "k": 10,
//!      "rows": [{"param": 4.0, "recall": 0.9, "mean_dist_ratio": 1.01,
//!                "success_at_eps": 1.0, "dist_comps": 60.1, "hops": 9.2,
//!                "qps": 120000.0}]}
//!   ]
//! }
//! ```
//!
//! `axis` is `"ef"` (beam width; `brute` ignores it — its rows are the flat
//! reference line) or `"budget"` (greedy distance budget, `k = 1`).
//! Non-finite metric values serialize as `null`. How to read the frontier —
//! and this schema — is documented in `EXPERIMENTS.md` at the repository
//! root.
//!
//! Run: `cargo run --release -p pg_bench --bin exp_recall
//! [--smoke | --full] [--threads N] [--algo NAME] [--label NAME]
//! [--gt-cache DIR]`

#![forbid(unsafe_code)]

use std::fmt::Write as _;

use pg_baselines::{
    nsw, vamana, BruteIndex, EngineIndex, GraphIndex, Hnsw, HnswParams, NswParams, SweepSearch,
    VamanaParams,
};
use pg_bench::{fmt, full_mode, init_threads, spread_start, value_flag, Table};
use pg_core::{GNet, QueryEngine, ThetaGraph};
use pg_eval::{CacheStatus, FrontierPoint, FrontierSweep, GroundTruth, Score};
use pg_metric::{Euclidean, FlatRow};
use pg_workloads as workloads;

const ALGOS: [&str; 6] = ["gnet", "theta", "hnsw", "vamana", "nsw", "brute"];

/// A boxed adapter over the flat Euclidean layout every sweep runs on.
type DynIndex = Box<dyn SweepSearch<FlatRow, Euclidean>>;

/// One frontier destined for the JSON artifact.
struct FrontierRecord {
    workload: &'static str,
    algo: String,
    axis: &'static str,
    k: usize,
    rows: Vec<FrontierPoint>,
}

/// `f64` as a JSON number, with non-finite values as `null`.
fn jf(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "null".into()
    }
}

fn machine_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |t| t.get())
}

fn main() {
    let threads = init_threads();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let full = full_mode();
    let (n, m, k) = if smoke {
        (300, 32, 5)
    } else if full {
        (4000, 200, 10)
    } else {
        (1200, 80, 10)
    };
    // The axis deliberately starts below k: a beam narrower than k cannot
    // return k results, so the low end traces the steep rising segment of
    // the frontier even on datasets small enough for ef >= k to saturate.
    let efs: Vec<usize> = if smoke {
        vec![2, 5, 8, 16, 32]
    } else if full {
        vec![2, 4, 10, 16, 32, 64, 128, 256]
    } else {
        vec![2, 4, 10, 16, 32, 64, 128]
    };
    let budgets: Vec<u64> = if full {
        vec![1, 4, 16, 64, 256, 1024]
    } else {
        vec![1, 4, 16, 64, 256]
    };
    let label_flag = value_flag("--label");
    let label_is_default = label_flag.is_none();
    let label = label_flag.unwrap_or_else(|| if smoke { "smoke".into() } else { "pr5".into() });
    let algo_filter = value_flag("--algo");
    if let Some(a) = &algo_filter {
        assert!(
            ALGOS.contains(&a.as_str()),
            "--algo must be one of {ALGOS:?}, got {a}"
        );
    }
    let gt_dir = value_flag("--gt-cache").unwrap_or_else(|| "target/gt-cache".into());
    let machine = machine_threads();
    let sweep = FrontierSweep::new(k, efs.clone());

    println!(
        "# RECALL: quality-cost frontiers on the standard suite \
         (n = {n}, m = {m}, k = {k}, {threads} thread(s), label: {label})\n"
    );
    let brute_selected = algo_filter.as_deref().is_none_or(|a| a == "brute");
    println!(
        "Deterministic metrics are asserted bit-identical across thread counts \
         1/2/{machine} before any timing{}.\n",
        if brute_selected {
            ", and brute-force recall is asserted exactly 1.0"
        } else {
            " (brute not selected: its recall == 1.0 self-check does not run)"
        }
    );

    let mut records: Vec<FrontierRecord> = Vec::new();

    for (wname, points, queries) in workloads::eval_suite_flat(n, m, 99) {
        let dim = points.dim();
        let data = points.into_dataset(Euclidean);
        let queries: Vec<FlatRow> = queries.into_rows();

        let gt_path = format!("{gt_dir}/{wname}_n{n}_m{m}_k{k}.pggt");
        let (truth, status) = GroundTruth::compute_or_load(&gt_path, &data, &queries, k)
            .expect("ground-truth cache read/write");
        println!(
            "## workload: {wname} (d = {dim}, ground truth: {})\n",
            match status {
                CacheStatus::Hit => "cache hit",
                CacheStatus::Miss => "computed, cached",
            }
        );

        // ---- build the selected indexes -----------------------------------
        // Two adapters per graph family: the `gate` (plain GraphIndex, whose
        // default parallel map genuinely follows the `with_threads` override
        // — so the invariance check exercises real 1/2/machine sharding) and
        // the `timed` EngineIndex (engine built HERE, outside any timing
        // window, so the q/s column measures pure search work). The
        // timed-vs-gate score assertion below bridges the two paths.
        let theta = if dim <= 2 { 0.25 } else { 0.7 };
        let selected = |name: &str| algo_filter.as_deref().is_none_or(|a| a == name);
        let gnet = selected("gnet").then(|| GNet::build_fast(&data, 1.0));
        let mut indexes: Vec<(&'static str, DynIndex, Option<DynIndex>)> = Vec::new();
        for name in ALGOS {
            if !selected(name) {
                continue;
            }
            let graph = match name {
                "gnet" => Some(gnet.as_ref().expect("built when selected").graph.clone()),
                "theta" => Some(ThetaGraph::build(&data, theta).graph),
                "vamana" => Some(vamana(&data, VamanaParams::default())),
                "nsw" => Some(nsw(&data, NswParams::default())),
                _ => None,
            };
            let (gate, timed): (DynIndex, Option<DynIndex>) = match graph {
                Some(g) => (
                    Box::new(GraphIndex::new(g.clone())),
                    Some(Box::new(EngineIndex::new(QueryEngine::new(
                        g,
                        data.clone(),
                    )))),
                ),
                None if name == "hnsw" => {
                    (Box::new(Hnsw::build(&data, HnswParams::default())), None)
                }
                None => (Box::new(BruteIndex), None),
            };
            indexes.push((name, gate, timed));
        }

        let mut table = Table::new(&[
            "algo", "ef", "recall@k", "ratio", "succ@1", "dists/q", "hops/q", "q/s",
        ]);
        for (name, gate, timed) in &indexes {
            // ---- determinism gate: scores at 1/2/machine threads ----------
            let score_all = |t: usize| -> Vec<Score> {
                rayon::with_threads(t, || {
                    efs.iter()
                        .map(|&ef| sweep.score_at(gate.as_ref(), &data, &queries, &truth, ef))
                        .collect()
                })
            };
            let base = score_all(1);
            for t in [2, machine] {
                assert_eq!(
                    score_all(t),
                    base,
                    "{wname}/{name}: metrics diverged at {t} threads"
                );
            }
            if *name == "brute" {
                for (ef, s) in efs.iter().zip(base.iter()) {
                    assert_eq!(s.recall, 1.0, "brute recall@{k} must be exactly 1.0");
                    assert_eq!(s.mean_dist_ratio, 1.0, "brute ratio must be exactly 1.0");
                    assert_eq!(s.success_at_eps, 1.0, "brute success@eps at ef = {ef}");
                }
            }

            // ---- timed frontier (scores re-checked against the gate) ------
            let timed_index = timed.as_deref().unwrap_or(gate.as_ref());
            let pts = sweep.run(timed_index, &data, &queries, &truth);
            for (p, b) in pts.iter().zip(base.iter()) {
                assert_eq!(&p.score, b, "{wname}/{name}: timed run changed a metric");
                table.row(vec![
                    (*name).into(),
                    (p.param as usize).to_string(),
                    fmt(p.score.recall, 3),
                    fmt(p.score.mean_dist_ratio, 3),
                    fmt(p.score.success_at_eps, 2),
                    fmt(p.score.dist_comps, 0),
                    fmt(p.score.hops, 1),
                    fmt(p.qps, 0),
                ]);
            }
            records.push(FrontierRecord {
                workload: wname,
                algo: (*name).to_string(),
                axis: "ef",
                k,
                rows: pts,
            });
        }
        table.print();

        // ---- the paper's axis: greedy distance budget on G_net ------------
        if let Some(gnet) = &gnet {
            // The cached k-truth suffices: budget scoring only reads the
            // rank-0 (nearest-neighbor) distance of each query.
            let starts: Vec<u32> = (0..queries.len()).map(|i| spread_start(i, n)).collect();
            let budget_sweep = FrontierSweep::new(1, vec![1]);
            let run_budget = |t: usize| -> Vec<Score> {
                rayon::with_threads(t, || {
                    let engine = QueryEngine::new(gnet.graph.clone(), data.clone());
                    budget_sweep
                        .run_greedy_budget(&engine, &starts, &queries, &truth, &budgets)
                        .into_iter()
                        .map(|p| p.score)
                        .collect()
                })
            };
            let base = run_budget(1);
            for t in [2, machine] {
                assert_eq!(
                    run_budget(t),
                    base,
                    "{wname}/gnet budget diverged at {t} threads"
                );
            }
            let engine = QueryEngine::new(gnet.graph.clone(), data.clone());
            let pts = budget_sweep.run_greedy_budget(&engine, &starts, &queries, &truth, &budgets);
            let mut btable = Table::new(&[
                "algo", "budget", "recall@1", "ratio", "succ@1", "dists/q", "hops/q", "q/s",
            ]);
            for (p, b) in pts.iter().zip(base.iter()) {
                assert_eq!(
                    &p.score, b,
                    "{wname}/gnet: timed budget run changed a metric"
                );
                btable.row(vec![
                    "gnet".into(),
                    (p.param as u64).to_string(),
                    fmt(p.score.recall, 3),
                    fmt(p.score.mean_dist_ratio, 3),
                    fmt(p.score.success_at_eps, 2),
                    fmt(p.score.dist_comps, 0),
                    fmt(p.score.hops, 1),
                    fmt(p.qps, 0),
                ]);
            }
            println!("\nGreedy budget frontier (the Section 1.1 `query(p, q, Q)` axis, k = 1):\n");
            btable.print();
            records.push(FrontierRecord {
                workload: wname,
                algo: "gnet".into(),
                axis: "budget",
                k: 1,
                rows: pts,
            });
        }
        println!();
    }

    println!("Reading guide: each (workload, algo) traces a frontier — recall rises with ef");
    println!("while dists/q grows and q/s falls; curves closer to the top-left dominate.");
    println!("`brute` is the exact reference (recall 1.0 at n dists/q); see EXPERIMENTS.md.");

    // ---- JSON trajectory artifact ------------------------------------------
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"schema_version\": 1,");
    let _ = writeln!(j, "  \"label\": \"{label}\",");
    let _ = writeln!(j, "  \"smoke\": {smoke},");
    let _ = writeln!(j, "  \"threads\": {threads},");
    let _ = writeln!(
        j,
        "  \"suite\": {{\"n\": {n}, \"m\": {m}, \"k\": {k}, \"eps\": {:.1}}},",
        sweep.eps
    );
    let _ = writeln!(j, "  \"frontiers\": [");
    for (i, r) in records.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{\"workload\": \"{}\", \"algo\": \"{}\", \"axis\": \"{}\", \"k\": {},",
            r.workload, r.algo, r.axis, r.k
        );
        let _ = writeln!(j, "     \"rows\": [");
        for (ri, p) in r.rows.iter().enumerate() {
            let _ = writeln!(
                j,
                "       {{\"param\": {}, \"recall\": {}, \"mean_dist_ratio\": {}, \"success_at_eps\": {}, \"dist_comps\": {}, \"hops\": {}, \"qps\": {}}}{}",
                jf(p.param),
                jf(p.score.recall),
                jf(p.score.mean_dist_ratio),
                jf(p.score.success_at_eps),
                jf(p.score.dist_comps),
                jf(p.score.hops),
                jf(p.qps),
                if ri + 1 < r.rows.len() { "," } else { "" }
            );
        }
        let _ = writeln!(
            j,
            "     ]}}{}",
            if i + 1 < records.len() { "," } else { "" }
        );
    }
    let _ = writeln!(j, "  ]");
    let _ = writeln!(j, "}}");

    match pg_bench::write_bench_artifact(&label, label_is_default, &j) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    }
}
