//! **Experiment: snapshot** — the build-once / query-many boundary:
//! build `G_net`, save the index through the versioned `pg_store` format,
//! load it back, and serve queries from the loaded engine.
//!
//! Reported: on-disk size vs in-memory size, save and load throughput
//! (MB/s), load time vs (re)build time, and loaded-engine query throughput.
//! Before any timing is trusted, the loaded engine's batch outcomes are
//! asserted **identical** to the freshly built engine's — results, hops and
//! `dist_comps` — so the offline/online split provably changes nothing but
//! the wall clock.
//!
//! Run: `cargo run --release -p pg_bench --bin exp_snapshot
//! [--smoke] [--full] [--threads N] [--path FILE]`
//!
//! `--path FILE` keeps the snapshot at FILE for reuse (e.g. by
//! `exp_t11_query --load-index FILE`); without it a temp file is used and
//! removed. `--smoke` is the tiny CI gate.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::time::Instant;

use pg_bench::{fmt, full_mode, init_threads, spread_start, value_flag, Table};
use pg_core::{GNet, QueryEngine};
use pg_metric::{Euclidean, FlatRow};
use pg_workloads as workloads;

fn main() {
    let threads = init_threads();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (n, d, m) = if smoke {
        (400, 2, 64)
    } else if full_mode() {
        (30_000, 3, 4096)
    } else {
        (10_000, 3, 1024)
    };
    println!("# snapshot: build once offline, save, load, serve online");
    println!("(n = {n}, d = {d}, {m} queries, {threads} thread(s))\n");

    // ---- Offline: build ----------------------------------------------------
    let side = (n as f64).sqrt() * 4.0;
    let data = workloads::uniform_cube_flat(n, d, side, 11).into_dataset(Euclidean);
    let t0 = Instant::now();
    let g = GNet::build_fast(&data, 1.0);
    let build_secs = t0.elapsed().as_secs_f64();
    let params = g.params;
    let engine = QueryEngine::new(g.graph, data);

    // ---- Save --------------------------------------------------------------
    let keep = value_flag("--path").map(PathBuf::from);
    let path = keep.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("exp_snapshot_{}.pgix", std::process::id()))
    });
    let t0 = Instant::now();
    engine
        .save_with(&path, 0, Some(params.into()))
        .expect("saving the index snapshot failed");
    let save_secs = t0.elapsed().as_secs_f64();
    let file_bytes = std::fs::metadata(&path)
        .expect("snapshot file missing")
        .len();

    // ---- Load --------------------------------------------------------------
    let t0 = Instant::now();
    let (loaded, meta) = QueryEngine::<FlatRow, Euclidean>::load_with_meta(&path)
        .expect("loading the index snapshot failed");
    let load_secs = t0.elapsed().as_secs_f64();
    // In-memory footprint of the loaded index (matches
    // `Snapshot::in_memory_bytes`): CSR arrays as `Graph` holds them, the
    // flat coordinate buffer, one 24-byte FlatRow handle per point.
    let mem_bytes =
        loaded.graph().memory_bytes() as u64 + (n as u64) * (d as u64) * 8 + (n as u64) * 24;
    assert_eq!(meta.n, n as u64);
    assert_eq!(meta.dims, d as u32);
    let build_meta = meta.build.expect("build params were saved");
    assert_eq!(build_meta.epsilon, params.epsilon);

    // ---- Parity: the loaded engine answers identically ---------------------
    let queries = workloads::uniform_queries_flat(m, d, 0.0, side, 12).into_rows();
    let starts: Vec<u32> = (0..m).map(|i| spread_start(i, n)).collect();
    let fresh = engine.batch_greedy(&starts, &queries);
    let t0 = Instant::now();
    let served = loaded.batch_greedy(&starts, &queries);
    let serve_secs = t0.elapsed().as_secs_f64();
    assert_eq!(fresh.dist_comps, served.dist_comps);
    for (a, b) in fresh.outcomes.iter().zip(served.outcomes.iter()) {
        assert_eq!(a.result, b.result, "loaded engine diverged");
        assert_eq!(a.result_dist, b.result_dist);
        assert_eq!(a.hops, b.hops);
        assert_eq!(a.dist_comps, b.dist_comps);
    }
    println!(
        "loaded-engine parity: {m} queries identical to the fresh build \
         (results, hops, dist_comps; {} total distance comps)\n",
        served.dist_comps
    );

    // ---- Report ------------------------------------------------------------
    let mb = |bytes: f64| bytes / (1024.0 * 1024.0);
    let mut t = Table::new(&["measure", "value"]);
    t.row(vec![
        "edges".into(),
        loaded.graph().edge_count().to_string(),
    ]);
    t.row(vec!["file size MB".into(), fmt(mb(file_bytes as f64), 2)]);
    t.row(vec!["in-memory MB".into(), fmt(mb(mem_bytes as f64), 2)]);
    t.row(vec![
        "file / memory".into(),
        fmt(file_bytes as f64 / mem_bytes as f64, 2),
    ]);
    t.row(vec!["build s".into(), fmt(build_secs, 3)]);
    t.row(vec![
        "save s (MB/s)".into(),
        format!(
            "{} ({})",
            fmt(save_secs, 3),
            fmt(mb(file_bytes as f64) / save_secs, 0)
        ),
    ]);
    t.row(vec![
        "load s (MB/s)".into(),
        format!(
            "{} ({})",
            fmt(load_secs, 3),
            fmt(mb(file_bytes as f64) / load_secs, 0)
        ),
    ]);
    t.row(vec![
        "load vs build".into(),
        format!("{}x faster", fmt(build_secs / load_secs, 0)),
    ]);
    t.row(vec![
        "loaded queries/s".into(),
        fmt(m as f64 / serve_secs, 0),
    ]);
    t.print();
    println!("\nThe online half never pays construction again: load is I/O-bound");
    println!("while build is distance-bound, so the gap widens with n.");

    match keep {
        Some(p) => println!("\nindex kept at {} ({} bytes)", p.display(), file_bytes),
        None => {
            let _ = std::fs::remove_file(&path);
        }
    }
}
