//! **Experiment SHARD** — the million-point unlock: `ShardedEngine` build
//! and search frontiers at `n` far beyond what the single-engine benches
//! touch, quality-guarded by sampled ground truth.
//!
//! The binary runs three phases, in order:
//!
//! 1. **Parity gate (before any timing).** On a small prefix-sized
//!    workload it asserts the PR 9 tentpole contract directly: a
//!    `ShardedEngine` at `ef = n` is **bit-identical** to a single
//!    `QueryEngine` — result ids, distances, merge order, and aggregate
//!    `dist_comps` — for shard counts {1, 2, 3, 8} × thread counts
//!    {1, 2, machine}. Any divergence aborts the run; the JSON artifact
//!    records `"failures": 0` only because the process survived.
//! 2. **Build frontier.** For each shard count `S` it builds the sharded
//!    index under a `Counting` metric (the clone-shared counter aggregates
//!    across shards) and reports total build distance computations, build
//!    seconds, and the recall@k the built index reaches at a reference
//!    `ef` — the build-cost-vs-quality trade of splitting one `G_net` into
//!    `S` smaller ones.
//! 3. **Search frontier.** For each shard count it walks the `ef` axis on
//!    the sampled queries and reports recall, mean dist comps/query, and
//!    q/s — scored against **sampled ground truth**
//!    (`GroundTruth::compute_or_load_sampled`, cached under
//!    `target/gt-cache/` keyed by the sample-aware fingerprint), because
//!    full ground truth at `n = 10^6` would cost `n · m` ≈ 10^9 distance
//!    computations before the experiment even starts.
//!
//! Results land in `BENCH_<label>.json` with a `shard` section:
//!
//! ```json
//! {
//!   "schema_version": 1, "label": "pr9", "smoke": false, "threads": 1,
//!   "shard": {
//!     "parity": {"n": 1500, "shard_counts": [1, 2, 3, 8],
//!                "thread_counts": [1, 2, 8], "failures": 0},
//!     "build": [{"shards": 8, "n": 1000000, "dist_comps": 123456789,
//!                "seconds": 42.0, "ef": 64, "k": 10, "recall": 0.95}],
//!     "search": [{"shards": 8, "n": 1000000, "ef": 64, "k": 10,
//!                 "sampled_queries": 100, "recall": 0.95,
//!                 "dist_comps": 812.0, "qps": 900.0}]
//!   }
//! }
//! ```
//!
//! Run: `cargo run --release -p pg_bench --bin exp_shard
//! [--smoke | --full] [--n N] [--shards S1,S2,…] [--sampled-queries C]
//! [--threads N] [--label NAME] [--gt-cache DIR] [--force]`
//!
//! `--full` is the committed configuration: `n = 10^6`. See EXPERIMENTS.md
//! for expected runtimes.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::time::Instant;

use pg_bench::{fmt, full_mode, init_threads, value_flag, Table};
use pg_core::{GNet, QueryEngine, ShardAssignment, ShardedEngine};
use pg_eval::{CacheStatus, FrontierSweep, GroundTruth};
use pg_metric::{Counting, Euclidean, FlatRow};
use pg_workloads as workloads;

const EPSILON: f64 = 1.0;
const DATA_SEED: u64 = 4242;
const QUERY_SEED: u64 = 7177;
const ASSIGN_SEED: u64 = 7;
const SAMPLE_SEED: u64 = 909;

/// `f64` as a JSON number, with non-finite values as `null`.
fn jf(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "null".into()
    }
}

fn machine_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |t| t.get())
}

struct BuildRow {
    shards: usize,
    dist_comps: u64,
    seconds: f64,
    recall: f64,
}

struct SearchRow {
    shards: usize,
    ef: usize,
    recall: f64,
    ratio: f64,
    dist_comps: f64,
    qps: f64,
}

/// The parity gate: sharded == single, bit for bit, at `ef = n`.
/// Returns the gate size and the thread counts exercised; panics on any
/// divergence (this runs before a single timer starts).
fn parity_gate(n_gate: usize, d: usize, side: f64, k: usize) -> (usize, Vec<usize>) {
    let points = workloads::uniform_cube_flat(n_gate, d, side, DATA_SEED);
    let queries: Vec<FlatRow> =
        workloads::uniform_queries_flat(24, d, 0.0, side, QUERY_SEED).into_rows();
    let single = {
        let data = points.clone().into_dataset(Euclidean);
        let g = GNet::build(&data, EPSILON);
        QueryEngine::new(g.graph, data)
    };
    let starts = vec![0u32; queries.len()];
    let want = single.batch_beam_detailed(&starts, &queries, n_gate, k);
    let thread_counts = vec![1, 2, machine_threads()];
    for shards in [1usize, 2, 3, 8] {
        let engine = ShardedEngine::build(
            &points,
            Euclidean,
            EPSILON,
            shards,
            &ShardAssignment::SeededRandom { seed: ASSIGN_SEED },
        );
        for &t in &thread_counts {
            let got = engine
                .clone()
                .with_threads(t)
                .batch_beam_detailed(&queries, n_gate, k);
            assert_eq!(
                got.outcomes, want.outcomes,
                "PARITY FAILURE: {shards} shards at {t} threads diverged from the single engine"
            );
            assert_eq!(
                got.dist_comps, want.dist_comps,
                "PARITY FAILURE: aggregate dist_comps diverged at {shards} shards / {t} threads"
            );
        }
    }
    (n_gate, thread_counts)
}

fn main() {
    let threads = init_threads();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let full = full_mode();
    let (n_default, m, sample_default, shards_default, efs): (
        usize,
        usize,
        usize,
        &[usize],
        Vec<usize>,
    ) = if smoke {
        (2_000, 64, 16, &[1, 2, 4], vec![4, 16, 64])
    } else if full {
        (1_000_000, 1_000, 100, &[1, 8, 32], vec![16, 64, 256])
    } else {
        (50_000, 400, 50, &[1, 4, 16], vec![8, 32, 128])
    };
    let n: usize = value_flag("--n")
        .map(|v| v.parse().expect("--n takes a positive integer"))
        .unwrap_or(n_default);
    let shard_list: Vec<usize> = value_flag("--shards")
        .map(|v| {
            v.split(',')
                .map(|s| s.trim().parse().expect("--shards takes S1,S2,…"))
                .collect()
        })
        .unwrap_or_else(|| shards_default.to_vec());
    let sample_count: usize = value_flag("--sampled-queries")
        .map(|v| {
            v.parse()
                .expect("--sampled-queries takes a positive integer")
        })
        .unwrap_or(sample_default);
    assert!(sample_count <= m, "--sampled-queries must be <= {m}");
    let k = 10usize;
    // Low dimension on purpose: G_net's degree grows exponentially with the
    // doubling dimension (Theorem 1.1's 2^O(λ) factor), so d = 2 is where
    // million-point graphs stay sparse enough to search in sub-linear time —
    // the same regime the paper's separation results live in.
    let d = 2usize;
    let side = 1_000.0;
    let ef_ref = efs[efs.len() / 2];
    let label_flag = value_flag("--label");
    let label_is_default = label_flag.is_none();
    let label = label_flag.unwrap_or_else(|| if smoke { "smoke".into() } else { "pr9".into() });
    let gt_dir = value_flag("--gt-cache").unwrap_or_else(|| "target/gt-cache".into());

    println!(
        "# SHARD: sharded build/search frontiers \
         (n = {n}, d = {d}, k = {k}, shards {shard_list:?}, \
         {sample_count}/{m} sampled queries, {threads} thread(s), label: {label})\n"
    );

    // ---- phase 1: parity gate, before any timing --------------------------
    let (gate_n, gate_threads) = parity_gate(n.min(1_500), d, side, k.min(5));
    println!(
        "Parity gate passed: sharded == single engine bit-for-bit at n = {gate_n}, \
         shard counts {{1, 2, 3, 8}} x thread counts {gate_threads:?}.\n"
    );

    // ---- workload and sampled ground truth --------------------------------
    let points = workloads::uniform_cube_flat(n, d, side, DATA_SEED);
    let all_queries: Vec<FlatRow> =
        workloads::uniform_queries_flat(m, d, 0.0, side, QUERY_SEED).into_rows();
    let gt_path = format!("{gt_dir}/shard_n{n}_d{d}_m{m}_k{k}_s{sample_count}.pggt");
    let gt_data = points.clone().into_dataset(Euclidean);
    let gt_start = Instant::now();
    let (truth, picked, status) = GroundTruth::compute_or_load_sampled(
        &gt_path,
        &gt_data,
        &all_queries,
        k,
        SAMPLE_SEED,
        sample_count,
    )
    .expect("sampled ground-truth cache read/write");
    drop(gt_data);
    let sampled: Vec<FlatRow> = picked.iter().map(|&i| all_queries[i].clone()).collect();
    println!(
        "Sampled ground truth over {sample_count} of {m} queries: {} ({:.1}s).\n",
        match status {
            CacheStatus::Hit => "cache hit",
            CacheStatus::Miss => "computed, cached",
        },
        gt_start.elapsed().as_secs_f64()
    );

    // ---- phases 2 + 3: build and search frontiers per shard count ---------
    let sweep = FrontierSweep::new(k, efs.clone());
    let mut build_rows: Vec<BuildRow> = Vec::new();
    let mut search_rows: Vec<SearchRow> = Vec::new();
    for &shards in &shard_list {
        let counting = Counting::new(Euclidean);
        let t0 = Instant::now();
        let engine = ShardedEngine::build(
            &points,
            counting.clone(),
            EPSILON,
            shards,
            &ShardAssignment::SeededRandom { seed: ASSIGN_SEED },
        );
        let seconds = t0.elapsed().as_secs_f64();
        let build_comps = counting.count();
        println!(
            "built {shards} shard(s) of n = {n} in {:.1}s ({build_comps} build dist comps)",
            seconds
        );

        for &ef in &efs {
            let t0 = Instant::now();
            let batch = engine.batch_beam_detailed(&sampled, ef, k);
            let elapsed = t0.elapsed().as_secs_f64();
            let score = sweep.score_outcomes(&truth, &batch.outcomes);
            if ef == ef_ref {
                build_rows.push(BuildRow {
                    shards,
                    dist_comps: build_comps,
                    seconds,
                    recall: score.recall,
                });
            }
            search_rows.push(SearchRow {
                shards,
                ef,
                recall: score.recall,
                ratio: score.mean_dist_ratio,
                dist_comps: score.dist_comps,
                qps: sampled.len() as f64 / elapsed,
            });
        }
    }
    println!();

    println!("Build frontier (recall column at reference ef = {ef_ref}):\n");
    let mut btable = Table::new(&["shards", "n", "build dists", "seconds", "recall@k"]);
    for r in &build_rows {
        btable.row(vec![
            r.shards.to_string(),
            n.to_string(),
            r.dist_comps.to_string(),
            fmt(r.seconds, 1),
            fmt(r.recall, 3),
        ]);
    }
    btable.print();

    println!("\nSearch frontier ({sample_count} sampled queries):\n");
    let mut stable = Table::new(&["shards", "ef", "recall@k", "ratio", "dists/q", "q/s"]);
    for r in &search_rows {
        stable.row(vec![
            r.shards.to_string(),
            r.ef.to_string(),
            fmt(r.recall, 3),
            fmt(r.ratio, 3),
            fmt(r.dist_comps, 0),
            fmt(r.qps, 0),
        ]);
    }
    stable.print();

    println!("\nReading guide: more shards cut build dist comps (each G_net is built on a");
    println!("smaller set) but spend more search dists/q at fixed ef (every shard is probed);");
    println!("recall at matched ef stays close because each shard returns its exact local");
    println!("top-k candidates. See EXPERIMENTS.md for the schema and expected runtimes.");

    // ---- JSON artifact ----------------------------------------------------
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"schema_version\": 1,");
    let _ = writeln!(j, "  \"label\": \"{label}\",");
    let _ = writeln!(j, "  \"smoke\": {smoke},");
    let _ = writeln!(j, "  \"threads\": {threads},");
    let _ = writeln!(j, "  \"shard\": {{");
    let _ = writeln!(
        j,
        "    \"parity\": {{\"n\": {gate_n}, \"shard_counts\": [1, 2, 3, 8], \
         \"thread_counts\": [{}], \"failures\": 0}},",
        gate_threads
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(j, "    \"build\": [");
    for (i, r) in build_rows.iter().enumerate() {
        let _ = writeln!(
            j,
            "      {{\"shards\": {}, \"n\": {n}, \"dist_comps\": {}, \"seconds\": {}, \
             \"ef\": {ef_ref}, \"k\": {k}, \"recall\": {}}}{}",
            r.shards,
            r.dist_comps,
            jf(r.seconds),
            jf(r.recall),
            if i + 1 < build_rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(j, "    ],");
    let _ = writeln!(j, "    \"search\": [");
    for (i, r) in search_rows.iter().enumerate() {
        let _ = writeln!(
            j,
            "      {{\"shards\": {}, \"n\": {n}, \"ef\": {}, \"k\": {k}, \
             \"sampled_queries\": {sample_count}, \"recall\": {}, \"dist_comps\": {}, \
             \"qps\": {}}}{}",
            r.shards,
            r.ef,
            jf(r.recall),
            jf(r.dist_comps),
            jf(r.qps),
            if i + 1 < search_rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(j, "    ]");
    let _ = writeln!(j, "  }}");
    let _ = writeln!(j, "}}");

    match pg_bench::write_bench_artifact(&label, label_is_default, &j) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    }
}
