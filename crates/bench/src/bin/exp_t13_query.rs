//! **Experiment T1.3-query** — Theorem 1.3 query bound: greedy on the
//! merged graph costs `O((1/ε)^λ log²Δ + (1/ε)^{d-1} log n log²Δ)` distance
//! computations, and the Section 5.2 walk structure holds — jackpot hops
//! partition the walk into short non-jackpot subsequences.
//!
//! Run: `cargo run --release -p pg-bench --bin exp_t13_query [--full]`

#![forbid(unsafe_code)]

use pg_bench::{fmt, full_mode, measure_greedy, Table};
use pg_core::{greedy, MergedGraph, MergedParams};
use pg_metric::Euclidean;
use pg_workloads as workloads;

fn main() {
    println!("# T1.3-query: merged-graph greedy cost and the Section 5.2 walk structure\n");

    let ns: Vec<usize> = if full_mode() {
        vec![1000, 2000, 4000, 8000, 16000]
    } else {
        vec![500, 1000, 2000, 4000]
    };

    let mut t = Table::new(&[
        "n",
        "logΔ",
        "τ",
        "dists/query",
        "hops",
        "worst ratio",
        "max non-jackpot run",
        "⌈ln n·logΔ⌉ bound",
    ]);
    for &n in &ns {
        let data =
            workloads::uniform_cube_flat(n, 2, (n as f64).sqrt() * 4.0, 31).into_dataset(Euclidean);
        let merged = MergedGraph::build(&data, MergedParams::new(1.0));
        let queries =
            workloads::uniform_queries_flat(50, 2, 0.0, (n as f64).sqrt() * 4.0, 32).into_rows();
        let (dists, hops, worst) = measure_greedy(&merged.graph, &data, &queries);

        // Section 5.2 structure: the longest run of consecutive non-jackpot
        // hop vertices must stay below ceil(ln n * log Δ) w.h.p.
        let mut max_run = 0usize;
        for (i, q) in queries.iter().enumerate() {
            let start = ((i * 7919) % n) as u32;
            let out = greedy(&merged.graph, &data, start, q);
            let mut run = 0usize;
            for &h in &out.hops {
                if merged.jackpots[h as usize] {
                    run = 0;
                } else {
                    run += 1;
                    max_run = max_run.max(run);
                }
            }
        }
        // tau = min(1, z / logΔ)  ⇒  logΔ = z / tau whenever tau < 1.
        let ld = (merged.params.z / merged.tau).max(1.0);
        let bound = ((n as f64).ln() * ld).ceil();
        t.row(vec![
            n.to_string(),
            fmt(ld, 0),
            fmt(merged.tau, 3),
            fmt(dists, 0),
            fmt(hops, 1),
            fmt(worst, 3),
            max_run.to_string(),
            fmt(bound, 0),
        ]);
    }
    t.print();
    println!("\nShape: dists/query stays polylog while brute force would be n; every");
    println!("non-jackpot run sits far below the ⌈ln n · log Δ⌉ ceiling of Lemma 5.2;");
    println!("worst ratio <= 1+ε = 2 from every start (the merged graph is a (1+ε)-PG).");
}
