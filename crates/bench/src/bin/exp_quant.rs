//! **Experiment QUANT** — compact point storage on the quality–cost
//! frontier: exact `f64` storage vs `f32` vs 8-bit scalar quantization
//! (SQ8), all three scored through the same `pg_eval` sweep, plus the
//! locality effect of the BFS/degree vertex reorder pass.
//!
//! The binary runs three phases, in order:
//!
//! 1. **Parity gates (before any timing).**
//!    * *Re-rank exactness*: on a gate-sized workload, quantized beam
//!      search at `ef = n` — navigate in the compact surrogate space, then
//!      re-rank every candidate with exact `f64` distances — returns
//!      **bit-identical** results to full-precision beam search, for both
//!      representations.
//!    * *Reorder bit-equality*: the BFS/degree relabeling is a pure
//!      renaming — greedy and beam searches on the reordered engine,
//!      mapped back through the permutation, equal the original's results,
//!      hops, and `dist_comps` exactly.
//!    * *Thread invariance*: quantized batch results are bit-identical
//!      across thread counts 1 / 2 / machine.
//!
//!    Any divergence aborts the run; the artifact records `"failures": 0`
//!    only because the process survived.
//! 2. **Locality.** Per workload, the mean |u − v| over directed edges of
//!    the `G_net` graph before and after `bfs_degree_order` — the
//!    cache-locality statistic the relabeling exists to improve.
//! 3. **Frontiers.** Per workload, the `ef` axis for `f64`
//!    (`EngineIndex`), `f32` and `sq8` (`QuantizedEngineIndex`), scored
//!    against exact cached ground truth. Quantized rows report exact
//!    re-ranked recall; `dist_comps` counts surrogate evaluations plus one
//!    exact evaluation per re-ranked candidate.
//!
//! Results land in `BENCH_<label>.json` with a `quant` section:
//!
//! ```json
//! {
//!   "schema_version": 1, "label": "pr10", "smoke": false, "threads": 1,
//!   "suite": {"n": 1200, "m": 80, "k": 10, "eps": 1.0},
//!   "quant": {
//!     "parity": {"rerank_checks": 4, "reorder_checks": 160,
//!                "thread_checks": 8, "failures": 0},
//!     "locality": [{"workload": "uniform-2d", "mean_gap_before": 310.2,
//!                   "mean_gap_after": 25.7}],
//!     "frontiers": [
//!       {"workload": "uniform-2d", "precision": "sq8", "axis": "ef",
//!        "k": 10, "rows": [{"param": 16.0, "recall": 0.97,
//!                           "mean_dist_ratio": 1.0, "success_at_eps": 1.0,
//!                           "dist_comps": 90.0, "hops": 0.0,
//!                           "qps": 100000.0}]}
//!     ]
//!   }
//! }
//! ```
//!
//! Run: `cargo run --release -p pg_bench --bin exp_quant
//! [--smoke | --full] [--threads N] [--label NAME] [--gt-cache DIR]
//! [--force]`

#![forbid(unsafe_code)]

use std::fmt::Write as _;

use pg_baselines::{EngineIndex, QuantizedEngineIndex, SweepSearch};
use pg_bench::{fmt, full_mode, init_threads, spread_start, value_flag, Table};
use pg_core::{beam_search_detailed, greedy, mean_edge_gap, GNet, QueryEngine};
use pg_eval::{CacheStatus, FrontierPoint, FrontierSweep, GroundTruth};
use pg_metric::{Euclidean, FlatRow, QuantKind};
use pg_workloads as workloads;

const EPSILON: f64 = 1.0;

/// One frontier destined for the JSON artifact.
struct FrontierRecord {
    workload: &'static str,
    precision: &'static str,
    k: usize,
    rows: Vec<FrontierPoint>,
}

struct LocalityRow {
    workload: &'static str,
    gap_before: f64,
    gap_after: f64,
}

/// `f64` as a JSON number, with non-finite values as `null`.
fn jf(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "null".into()
    }
}

fn machine_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |t| t.get())
}

/// Gate 1: quantized beam at `ef = n` equals exact beam bit-for-bit (the
/// re-rank contract at full candidate width). Returns the number of
/// (workload-free) checks performed; panics on divergence.
fn rerank_gate(n_gate: usize) -> usize {
    let mut checks = 0usize;
    for (seed, d) in [(101u64, 2usize), (202, 4)] {
        let points = workloads::uniform_cube_flat(n_gate, d, 60.0, seed);
        let queries: Vec<FlatRow> =
            workloads::uniform_queries_flat(16, d, 0.0, 60.0, seed ^ 0xabc).into_rows();
        let data = points.into_dataset(Euclidean);
        let g = GNet::build_fast(&data, EPSILON);
        let engine = QueryEngine::new(g.graph, data);
        let starts = vec![0u32; queries.len()];
        let k = 5;
        let want = engine.batch_beam_detailed(&starts, &queries, n_gate, k);
        for kind in [QuantKind::F32, QuantKind::Sq8] {
            let compact = engine.quantize(kind).expect("finite workload encodes");
            let got = engine.batch_beam_quantized_detailed(&compact, &starts, &queries, n_gate, k);
            for (g, w) in got.outcomes.iter().zip(&want.outcomes) {
                assert_eq!(
                    g.results,
                    w.results,
                    "PARITY FAILURE: {} re-rank at ef = n diverged from exact search",
                    kind.name()
                );
            }
            checks += 1;
        }
    }
    checks
}

/// Gate 2: the BFS/degree relabeling is search-transparent — greedy and
/// beam on the reordered engine, mapped back through the permutation,
/// equal the original bit-for-bit (results, hops, dist comps). Returns the
/// number of per-query checks; panics on divergence.
fn reorder_gate(n_gate: usize) -> usize {
    let mut checks = 0usize;
    let points = workloads::uniform_cube_flat(n_gate, 2, 80.0, 4321);
    let queries: Vec<FlatRow> = workloads::uniform_queries_flat(20, 2, 0.0, 80.0, 8765).into_rows();
    let data = points.into_dataset(Euclidean);
    let g = GNet::build_fast(&data, EPSILON);
    let engine = QueryEngine::new(g.graph, data);
    let (reordered, map) = engine.reorder_bfs(0);
    for (qi, q) in queries.iter().enumerate() {
        let start = spread_start(qi, n_gate);
        let a = greedy(engine.graph(), engine.data(), start, q);
        let b = greedy(reordered.graph(), reordered.data(), map.to_new(start), q);
        assert_eq!(
            map.to_old(b.result),
            a.result,
            "PARITY FAILURE: reorder changed a greedy result"
        );
        let mapped_hops: Vec<u32> = b.hops.iter().map(|&v| map.to_old(v)).collect();
        assert_eq!(
            (mapped_hops, b.dist_comps),
            (a.hops, a.dist_comps),
            "PARITY FAILURE: reorder changed the greedy hop path or dist_comps"
        );
        checks += 1;

        let a = beam_search_detailed(engine.graph(), engine.data(), start, q, 12, 4);
        let b = beam_search_detailed(
            reordered.graph(),
            reordered.data(),
            map.to_new(start),
            q,
            12,
            4,
        );
        let mapped: Vec<(u32, f64)> = b.results.iter().map(|&(v, s)| (map.to_old(v), s)).collect();
        assert_eq!(
            mapped, a.results,
            "PARITY FAILURE: reorder changed beam results"
        );
        assert_eq!(
            (b.dist_comps, b.expansions),
            (a.dist_comps, a.expansions),
            "PARITY FAILURE: reorder changed beam dist_comps/expansions"
        );
        checks += 1;
    }
    checks
}

/// Gate 3: quantized batch search is bit-identical across thread counts
/// 1 / 2 / machine. Returns the number of checks; panics on divergence.
fn thread_gate(n_gate: usize) -> (usize, Vec<usize>) {
    let mut checks = 0usize;
    let thread_counts = vec![1, 2, machine_threads()];
    let points = workloads::uniform_cube_flat(n_gate, 2, 90.0, 5555);
    let queries: Vec<FlatRow> = workloads::uniform_queries_flat(24, 2, 0.0, 90.0, 6666).into_rows();
    let data = points.into_dataset(Euclidean);
    let g = GNet::build_fast(&data, EPSILON);
    let starts = vec![0u32; queries.len()];
    for kind in [QuantKind::F32, QuantKind::Sq8] {
        let base = {
            let engine = QueryEngine::new(g.graph.clone(), data.clone()).with_threads(1);
            let compact = engine.quantize(kind).expect("finite workload encodes");
            engine.batch_beam_quantized_detailed(&compact, &starts, &queries, 16, 5)
        };
        for &t in &thread_counts {
            let engine = QueryEngine::new(g.graph.clone(), data.clone()).with_threads(t);
            let compact = engine.quantize(kind).expect("finite workload encodes");
            let got = engine.batch_beam_quantized_detailed(&compact, &starts, &queries, 16, 5);
            assert_eq!(
                got.outcomes,
                base.outcomes,
                "PARITY FAILURE: {} quantized batch diverged at {t} threads",
                kind.name()
            );
            checks += 1;
        }
    }
    (checks, thread_counts)
}

fn main() {
    let threads = init_threads();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let full = full_mode();
    let (n, m, k) = if smoke {
        (300, 32, 5)
    } else if full {
        (4000, 200, 10)
    } else {
        (1200, 80, 10)
    };
    let efs: Vec<usize> = if smoke {
        vec![2, 5, 8, 16, 32]
    } else if full {
        vec![2, 4, 10, 16, 32, 64, 128, 256]
    } else {
        vec![2, 4, 10, 16, 32, 64, 128]
    };
    let label_flag = value_flag("--label");
    let label_is_default = label_flag.is_none();
    let label = label_flag.unwrap_or_else(|| if smoke { "smoke".into() } else { "pr10".into() });
    let gt_dir = value_flag("--gt-cache").unwrap_or_else(|| "target/gt-cache".into());
    let sweep = FrontierSweep::new(k, efs.clone());

    println!(
        "# QUANT: f64 vs f32 vs SQ8 storage frontiers + reorder locality \
         (n = {n}, m = {m}, k = {k}, {threads} thread(s), label: {label})\n"
    );

    // ---- phase 1: parity gates, before any timing -------------------------
    let n_gate = n.min(400);
    let rerank_checks = rerank_gate(n_gate);
    let reorder_checks = reorder_gate(n_gate);
    let (thread_checks, gate_threads) = thread_gate(n_gate);
    println!(
        "Parity gates passed at n = {n_gate}: re-ranked quantized search == exact \
         search at ef = n ({rerank_checks} checks), BFS reorder is search-transparent \
         ({reorder_checks} checks), quantized batches bit-identical across thread \
         counts {gate_threads:?} ({thread_checks} checks).\n"
    );

    // ---- phases 2 + 3: locality + frontiers per workload ------------------
    let mut locality: Vec<LocalityRow> = Vec::new();
    let mut records: Vec<FrontierRecord> = Vec::new();
    for (wname, points, queries) in workloads::eval_suite_flat(n, m, 99) {
        let dim = points.dim();
        let data = points.into_dataset(Euclidean);
        let queries: Vec<FlatRow> = queries.into_rows();

        let gt_path = format!("{gt_dir}/{wname}_n{n}_m{m}_k{k}.pggt");
        let (truth, status) = GroundTruth::compute_or_load(&gt_path, &data, &queries, k)
            .expect("ground-truth cache read/write");
        println!(
            "## workload: {wname} (d = {dim}, ground truth: {})\n",
            match status {
                CacheStatus::Hit => "cache hit",
                CacheStatus::Miss => "computed, cached",
            }
        );

        let g = GNet::build_fast(&data, EPSILON);
        let engine = QueryEngine::new(g.graph, data.clone());

        // Locality: the reorder pass is parity-gated above, so here it is
        // reported purely as the edge-gap statistic it targets.
        let gap_before = mean_edge_gap(engine.graph());
        let (reordered, _) = engine.reorder_bfs(0);
        let gap_after = mean_edge_gap(reordered.graph());
        drop(reordered);
        locality.push(LocalityRow {
            workload: wname,
            gap_before,
            gap_after,
        });
        println!(
            "BFS/degree reorder: mean edge gap {} -> {}\n",
            fmt(gap_before, 1),
            fmt(gap_after, 1)
        );

        // Frontiers: identical graph, identical queries — only the stored
        // representation of the points changes between the three sweeps.
        let exact = EngineIndex::new(engine.clone());
        let f32_index = QuantizedEngineIndex::new(engine.clone(), QuantKind::F32)
            .expect("finite workload encodes");
        let sq8_index = QuantizedEngineIndex::new(engine.clone(), QuantKind::Sq8)
            .expect("finite workload encodes");
        let sweeps: Vec<(&'static str, &dyn SweepSearch<FlatRow, Euclidean>)> =
            vec![("f64", &exact), ("f32", &f32_index), ("sq8", &sq8_index)];

        let mut table = Table::new(&[
            "precision",
            "ef",
            "recall@k",
            "ratio",
            "succ@1",
            "dists/q",
            "q/s",
        ]);
        for (precision, index) in sweeps {
            let pts = sweep.run(index, &data, &queries, &truth);
            for p in &pts {
                table.row(vec![
                    precision.into(),
                    (p.param as usize).to_string(),
                    fmt(p.score.recall, 3),
                    fmt(p.score.mean_dist_ratio, 3),
                    fmt(p.score.success_at_eps, 2),
                    fmt(p.score.dist_comps, 0),
                    fmt(p.qps, 0),
                ]);
            }
            records.push(FrontierRecord {
                workload: wname,
                precision,
                k,
                rows: pts,
            });
        }
        table.print();
        println!();
    }

    println!("Reading guide: all three precisions report exact re-ranked results, so their");
    println!("recall columns are directly comparable; quantized dists/q includes the exact");
    println!("re-rank cost (one f64 evaluation per candidate). The compact rows earn their");
    println!("keep when they sit on or above the f64 frontier at equal q/s — judged on the");
    println!("recall frontier, never on wall clock alone. SQ8 is aspect-ratio-bound: its");
    println!("8-bit codes span the global coordinate range, so on chain-2d (log2(aspect)");
    println!("far above 8) nearby clusters collapse to one code and recall falls — the same");
    println!("log-Delta sensitivity that workload exists to expose; f32's 24-bit mantissa");
    println!("is unaffected. See EXPERIMENTS.md for the schema and expected runtimes.");

    // ---- JSON artifact ----------------------------------------------------
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"schema_version\": 1,");
    let _ = writeln!(j, "  \"label\": \"{label}\",");
    let _ = writeln!(j, "  \"smoke\": {smoke},");
    let _ = writeln!(j, "  \"threads\": {threads},");
    let _ = writeln!(
        j,
        "  \"suite\": {{\"n\": {n}, \"m\": {m}, \"k\": {k}, \"eps\": {:.1}}},",
        sweep.eps
    );
    let _ = writeln!(j, "  \"quant\": {{");
    let _ = writeln!(
        j,
        "    \"parity\": {{\"rerank_checks\": {rerank_checks}, \
         \"reorder_checks\": {reorder_checks}, \"thread_checks\": {thread_checks}, \
         \"failures\": 0}},"
    );
    let _ = writeln!(j, "    \"locality\": [");
    for (i, r) in locality.iter().enumerate() {
        let _ = writeln!(
            j,
            "      {{\"workload\": \"{}\", \"mean_gap_before\": {}, \"mean_gap_after\": {}}}{}",
            r.workload,
            jf(r.gap_before),
            jf(r.gap_after),
            if i + 1 < locality.len() { "," } else { "" }
        );
    }
    let _ = writeln!(j, "    ],");
    let _ = writeln!(j, "    \"frontiers\": [");
    for (i, r) in records.iter().enumerate() {
        let _ = writeln!(
            j,
            "      {{\"workload\": \"{}\", \"precision\": \"{}\", \"axis\": \"ef\", \"k\": {},",
            r.workload, r.precision, r.k
        );
        let _ = writeln!(j, "       \"rows\": [");
        for (ri, p) in r.rows.iter().enumerate() {
            let _ = writeln!(
                j,
                "         {{\"param\": {}, \"recall\": {}, \"mean_dist_ratio\": {}, \"success_at_eps\": {}, \"dist_comps\": {}, \"hops\": {}, \"qps\": {}}}{}",
                jf(p.param),
                jf(p.score.recall),
                jf(p.score.mean_dist_ratio),
                jf(p.score.success_at_eps),
                jf(p.score.dist_comps),
                jf(p.score.hops),
                jf(p.qps),
                if ri + 1 < r.rows.len() { "," } else { "" }
            );
        }
        let _ = writeln!(
            j,
            "       ]}}{}",
            if i + 1 < records.len() { "," } else { "" }
        );
    }
    let _ = writeln!(j, "    ]");
    let _ = writeln!(j, "  }}");
    let _ = writeln!(j, "}}");

    match pg_bench::write_bench_artifact(&label, label_is_default, &j) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    }
}
