//! **Experiment T1.1-size** — Theorem 1.1 size bound:
//! `G_net` has `O((1/ε)^λ · n log Δ)` edges.
//!
//! Three tables:
//! 1. edges vs `n` at fixed ε (normalized per point per level: must be flat);
//! 2. edges vs `ε` at fixed `n` (tracks `φ^λ`);
//! 3. per-level out-degree vs the Fact 2.3 packing ceiling.
//!
//! Run: `cargo run --release -p pg-bench --bin exp_t11_size [--full]`

#![forbid(unsafe_code)]

use pg_bench::{fmt, full_mode, loglog_slope, Table};
use pg_core::GNet;
use pg_metric::Euclidean;
use pg_workloads as workloads;

fn main() {
    println!("# T1.1-size: |E(G_net)| = O((1/eps)^lambda * n log Delta)\n");

    // ---- Table 1: n sweep --------------------------------------------------
    let ns: Vec<usize> = if full_mode() {
        vec![1000, 2000, 4000, 8000, 16000, 32000]
    } else {
        vec![500, 1000, 2000, 4000, 8000]
    };
    let mut t = Table::new(&["n", "logΔ", "edges", "edges/(n·logΔ)", "max deg"]);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &n in &ns {
        let data =
            workloads::uniform_cube_flat(n, 2, (n as f64).sqrt() * 4.0, 42).into_dataset(Euclidean);
        let g = GNet::build_fast(&data, 1.0);
        let log_delta = g.hierarchy.log_aspect() as f64;
        let e = g.graph.edge_count() as f64;
        t.row(vec![
            n.to_string(),
            fmt(log_delta, 0),
            fmt(e, 0),
            fmt(e / (n as f64 * log_delta), 2),
            g.graph.max_out_degree().to_string(),
        ]);
        xs.push(n as f64);
        ys.push(e);
    }
    t.print();
    println!(
        "\nlog-log slope of edges vs n: {:.3} (theory: ~1.0, near-linear in n)\n",
        loglog_slope(&xs, &ys)
    );

    // ---- Table 2: epsilon sweep -------------------------------------------
    let n = if full_mode() { 4000 } else { 1500 };
    let data = workloads::uniform_cube_flat(n, 2, 200.0, 43).into_dataset(Euclidean);
    let mut t = Table::new(&["ε", "η", "φ", "edges", "edges/n", "edges/(n·φ²·logΔ)"]);
    for eps in [1.0, 0.5, 0.25, 0.125] {
        let g = GNet::build_fast(&data, eps);
        let e = g.graph.edge_count() as f64;
        let log_delta = g.hierarchy.log_aspect() as f64;
        let phi = g.params.phi;
        t.row(vec![
            fmt(eps, 3),
            g.params.eta.to_string(),
            fmt(phi, 0),
            fmt(e, 0),
            fmt(e / n as f64, 1),
            // λ = 2 for the plane: normalizing by φ^2 · logΔ should flatten.
            fmt(e / (n as f64 * phi * phi * log_delta) * 1000.0, 2),
        ]);
    }
    t.print();
    println!("\n(last column is scaled x1000; flat ⇒ the (1/ε)^λ = φ^λ dependence is real)\n");

    // ---- Table 3: per-level degree vs packing ceiling ----------------------
    let data = workloads::uniform_cube_flat(2000, 2, 180.0, 44).into_dataset(Euclidean);
    let g = GNet::build_fast(&data, 1.0);
    let phi = g.params.phi;
    let n2 = data.len();
    let mut t = Table::new(&[
        "level",
        "radius",
        "|Y_i|",
        "avg deg@lvl",
        "packing bound (2φ)^λ·8^λ",
    ]);
    for (i, lvl) in g.hierarchy.levels().iter().enumerate() {
        // Count edges attributable to this level: targets within φ·r_i that
        // are centers of Y_i (recount; diagnostic only).
        let mut cnt = 0usize;
        for p in 0..n2 {
            for &y in &lvl.centers {
                if y as usize != p && data.dist(p, y as usize) <= phi * lvl.radius {
                    cnt += 1;
                }
            }
        }
        let bound = (8.0 * 2.0 * phi).powi(2);
        t.row(vec![
            i.to_string(),
            fmt(lvl.radius, 2),
            lvl.len().to_string(),
            fmt(cnt as f64 / n2 as f64, 1),
            fmt(bound, 0),
        ]);
    }
    t.print();
    println!("\nEvery level's average degree sits below the Fact 2.3 packing ceiling.");
}
