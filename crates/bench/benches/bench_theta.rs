//! Criterion benchmarks for θ-graph construction: the 2-d dominance sweep
//! (near-linear, the [5,25] substitute) vs the pairwise reference, and the
//! d = 3 grid-snap pairwise builder.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pg_core::ThetaGraph;
use pg_metric::Euclidean;
use pg_workloads as workloads;
use std::hint::black_box;
use std::time::Duration;

fn theta(c: &mut Criterion) {
    let mut group = c.benchmark_group("theta");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    for n in [1000usize, 8000] {
        let data = workloads::uniform_cube_flat(n, 2, 100.0, 13).into_dataset(Euclidean);
        group.bench_with_input(BenchmarkId::new("sweep_2d_theta_0.25", n), &n, |b, _| {
            b.iter(|| black_box(ThetaGraph::build(&data, 0.25)))
        });
        if n <= 1000 {
            group.bench_with_input(BenchmarkId::new("pairwise_2d_theta_0.25", n), &n, |b, _| {
                b.iter(|| black_box(ThetaGraph::build_naive(&data, 0.25)))
            });
        }
    }

    let data3 = workloads::uniform_cube_flat(2000, 3, 100.0, 14).into_dataset(Euclidean);
    group.bench_function("pairwise_3d_theta_0.5_n2000", |b| {
        b.iter(|| black_box(ThetaGraph::build(&data3, 0.5)))
    });
    group.finish();
}

criterion_group!(benches, theta);
criterion_main!(benches);
