//! Criterion benchmarks for net construction: the near-linear hierarchical
//! builder (Har-Peled–Mendel substitute) vs the quadratic greedy reference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pg_metric::Euclidean;
use pg_nets::{greedy_net, independent_hierarchy, NetHierarchy};
use pg_workloads as workloads;
use std::hint::black_box;
use std::time::Duration;

fn nets(c: &mut Criterion) {
    let mut group = c.benchmark_group("nets");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    for n in [1000usize, 8000] {
        let data =
            workloads::uniform_cube_flat(n, 2, (n as f64).sqrt() * 4.0, 11).into_dataset(Euclidean);

        group.bench_with_input(BenchmarkId::new("hierarchy_fast", n), &n, |b, _| {
            b.iter(|| black_box(NetHierarchy::build(&data)))
        });

        if n <= 1000 {
            group.bench_with_input(
                BenchmarkId::new("hierarchy_greedy_quadratic", n),
                &n,
                |b, _| {
                    b.iter(|| {
                        let (dmin, dmax) = (0.5, (n as f64).sqrt() * 8.0);
                        black_box(independent_hierarchy(&data, dmax, dmin))
                    })
                },
            );
            let ids: Vec<u32> = (0..n as u32).collect();
            group.bench_with_input(BenchmarkId::new("single_greedy_net", n), &n, |b, _| {
                b.iter(|| black_box(greedy_net(&data, &ids, 8.0)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, nets);
criterion_main!(benches);
