//! Criterion wall-clock benchmarks for index construction (complements
//! exp_t11_build, which counts distance computations).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pg_baselines::{nsw, slow_preprocessing, vamana, Hnsw, HnswParams, NswParams, VamanaParams};
use pg_core::GNet;
use pg_metric::Euclidean;
use pg_workloads as workloads;
use std::hint::black_box;
use std::time::Duration;

fn construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("construction");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));

    for n in [1000usize, 4000] {
        let data =
            workloads::uniform_cube_flat(n, 2, (n as f64).sqrt() * 4.0, 3).into_dataset(Euclidean);

        group.bench_with_input(BenchmarkId::new("gnet_fast", n), &n, |b, _| {
            b.iter(|| black_box(GNet::build_fast(&data, 1.0)))
        });
        group.bench_with_input(BenchmarkId::new("gnet_covertree", n), &n, |b, _| {
            b.iter(|| black_box(GNet::build_covertree(&data, 1.0)))
        });
        group.bench_with_input(BenchmarkId::new("gnet_naive", n), &n, |b, _| {
            b.iter(|| black_box(GNet::build_naive(&data, 1.0)))
        });
        if n <= 1000 {
            group.bench_with_input(BenchmarkId::new("diskann_slow", n), &n, |b, _| {
                b.iter(|| black_box(slow_preprocessing(&data, 3.0)))
            });
        }
        group.bench_with_input(BenchmarkId::new("vamana", n), &n, |b, _| {
            b.iter(|| black_box(vamana(&data, VamanaParams::default())))
        });
        group.bench_with_input(BenchmarkId::new("hnsw", n), &n, |b, _| {
            b.iter(|| black_box(Hnsw::build(&data, HnswParams::default())))
        });
        group.bench_with_input(BenchmarkId::new("nsw", n), &n, |b, _| {
            b.iter(|| black_box(nsw(&data, NswParams::default())))
        });
    }
    group.finish();
}

criterion_group!(benches, construction);
criterion_main!(benches);
