//! Criterion benchmarks for the dynamic cover tree (the Section 2.4
//! substrate): bulk build, point queries, and the delete/restore cycle the
//! paper's `build` performs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pg_covertree::CoverTree;
use pg_metric::Euclidean;
use pg_workloads as workloads;
use std::hint::black_box;
use std::time::Duration;

fn covertree(c: &mut Criterion) {
    let mut group = c.benchmark_group("covertree");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    for n in [1000usize, 8000] {
        let data =
            workloads::uniform_cube_flat(n, 2, (n as f64).sqrt() * 4.0, 5).into_dataset(Euclidean);

        group.bench_with_input(BenchmarkId::new("build", n), &n, |b, _| {
            b.iter(|| black_box(CoverTree::build_all(&data)))
        });

        let tree = CoverTree::build_all(&data);
        let queries =
            workloads::uniform_queries_flat(64, 2, 0.0, (n as f64).sqrt() * 4.0, 6).into_rows();

        group.bench_with_input(BenchmarkId::new("nearest_exact", n), &n, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                let q = &queries[i % queries.len()];
                i += 1;
                black_box(tree.nearest(q))
            })
        });
        group.bench_with_input(BenchmarkId::new("ann_2", n), &n, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                let q = &queries[i % queries.len()];
                i += 1;
                black_box(tree.ann(q, 2.0))
            })
        });
        group.bench_with_input(BenchmarkId::new("knn_10", n), &n, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                let q = &queries[i % queries.len()];
                i += 1;
                black_box(tree.k_nearest(q, 10))
            })
        });
    }

    // The Section 2.4 retrieval pattern: 2-ANN, delete, ..., restore.
    let n = 4000usize;
    let data = workloads::uniform_cube_flat(n, 2, 260.0, 7).into_dataset(Euclidean);
    let mut tree = CoverTree::build_all(&data);
    group.bench_function("sec24_retrieval_cycle", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let q = data.point(i % n).clone();
            i += 1;
            let mut deleted = Vec::new();
            for _ in 0..8 {
                let Some((y, _)) = tree.ann(&q, 2.0) else {
                    break;
                };
                tree.remove(y);
                deleted.push(y);
            }
            for y in deleted {
                tree.restore(y);
            }
        })
    });
    group.finish();
}

criterion_group!(benches, covertree);
criterion_main!(benches);
