//! Criterion wall-clock benchmarks for query routing (complements
//! exp_t11_query / exp_t13_query, which count distance computations).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pg_baselines::{Hnsw, HnswParams};
use pg_core::{beam_search, greedy, GNet, MergedGraph, MergedParams, QueryEngine};
use pg_metric::Euclidean;
use pg_workloads as workloads;
use std::hint::black_box;
use std::time::Duration;

fn query(c: &mut Criterion) {
    let n = 8000usize;
    let data =
        workloads::uniform_cube_flat(n, 2, (n as f64).sqrt() * 4.0, 9).into_dataset(Euclidean);
    let queries =
        workloads::uniform_queries_flat(64, 2, 0.0, (n as f64).sqrt() * 4.0, 10).into_rows();

    let gnet = GNet::build_fast(&data, 1.0);
    let merged = MergedGraph::build(&data, MergedParams::new(1.0));
    let hnsw = Hnsw::build(&data, HnswParams::default());

    let mut group = c.benchmark_group("query_n8000");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));

    group.bench_function(BenchmarkId::new("greedy_gnet", n), |b| {
        let mut i = 0usize;
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            black_box(greedy(&gnet.graph, &data, ((i * 131) % n) as u32, q))
        })
    });
    group.bench_function(BenchmarkId::new("greedy_merged", n), |b| {
        let mut i = 0usize;
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            black_box(greedy(&merged.graph, &data, ((i * 131) % n) as u32, q))
        })
    });
    group.bench_function(BenchmarkId::new("beam16_gnet", n), |b| {
        let mut i = 0usize;
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            black_box(beam_search(&gnet.graph, &data, 0, q, 16, 1))
        })
    });
    group.bench_function(BenchmarkId::new("hnsw_ef16", n), |b| {
        let mut i = 0usize;
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            black_box(hnsw.search(&data, q, 16, 1))
        })
    });
    group.bench_function(BenchmarkId::new("brute_force", n), |b| {
        let mut i = 0usize;
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            black_box(data.nearest_brute(q))
        })
    });
    group.finish();

    // Batched greedy through the engine, one bench per thread count: the
    // distance totals are asserted identical (thread count only moves the
    // wall clock, which is exactly what this suite measures).
    let starts: Vec<u32> = (0..queries.len()).map(|i| ((i * 131) % n) as u32).collect();
    let engine = QueryEngine::new(gnet.graph.clone(), data.clone());
    let reference = engine
        .clone()
        .with_threads(1)
        .batch_greedy(&starts, &queries);
    let mut group = c.benchmark_group("batch_greedy_n8000");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for threads in [1usize, 2, 4] {
        let e = engine.clone().with_threads(threads);
        let b64 = e.batch_greedy(&starts, &queries);
        assert_eq!(
            b64.dist_comps, reference.dist_comps,
            "batch distance totals must not depend on thread count"
        );
        group.bench_function(BenchmarkId::new("threads", threads), |b| {
            b.iter(|| black_box(e.batch_greedy(&starts, &queries)))
        });
    }
    group.finish();
}

criterion_group!(benches, query);
criterion_main!(benches);
