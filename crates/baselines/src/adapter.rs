//! Uniform search adapters: every index family in the workspace behind one
//! trait, so evaluation sweeps (`pg_eval`) can walk a quality–cost frontier
//! over `G_net`, θ-graphs, DiskANN/Vamana, NSW, HNSW and brute force with
//! identical driver code.
//!
//! The three shapes an ANN index takes in this workspace are:
//!
//! * **a plain [`Graph`]** routed by [`pg_core::beam_search`] — `G_net`,
//!   θ-graphs, the merged graph, Vamana, NSW, slow-preprocessing DiskANN
//!   ([`GraphIndex`] wraps any of them);
//! * **a layered structure with its own search** — [`Hnsw`](crate::Hnsw);
//! * **no index at all** — exact brute force ([`BruteIndex`]), the
//!   recall-1.0 reference every frontier is scored against.
//!
//! [`SweepSearch`] erases the difference: one query in, one
//! [`BeamOutcome`] out (results in brute-force-comparable `(dist, id)`
//! order, plus that query's own `dist_comps` and `expansions`). The
//! provided [`SweepSearch::search_batch`] shards a query set across the
//! thread pool with the order-preserving parallel map, so every adapter is
//! batch-sweepable and **thread-count invariant** by construction.
//! [`EngineIndex`] additionally routes batches through
//! [`QueryEngine::batch_beam_detailed`] — the same engine path the serving
//! system uses — with the engine built **once**, so timed sweeps measure
//! pure search work, never setup.
//!
//! # `ef` semantics (uniform across adapters)
//!
//! `ef` is the *effort axis* a frontier sweep walks: the beam width for
//! graph indexes and HNSW (effective width `ef.max(k)`; larger `ef` buys
//! recall with distance computations), and deliberately **ignored** by
//! [`BruteIndex`] — brute force always scans all `n` points, so its
//! frontier is a single point repeated along the axis, which is exactly
//! what makes it the fixed reference line of a recall/QPS plot.
//!
//! # Example
//!
//! ```
//! use pg_baselines::{BruteIndex, GraphIndex, SweepSearch};
//! use pg_core::GNet;
//! use pg_metric::{Euclidean, FlatPoints, FlatRow};
//!
//! let data = FlatPoints::from_fn(80, 2, |i, out| {
//!     out.push((i % 9) as f64);
//!     out.push((i / 9) as f64);
//! })
//! .into_dataset(Euclidean);
//! let pg = GNet::build(&data, 1.0);
//!
//! let index = GraphIndex::new(pg.graph);
//! let q: FlatRow = vec![4.3, 3.9].into();
//! let approx = index.search_one(&data, &q, 8, 3);
//! let exact = BruteIndex.search_one(&data, &q, 8, 3);
//! assert_eq!(approx.results.len(), 3);
//! // Brute force is the ground truth: dist_comps == n, results exact.
//! assert_eq!(exact.dist_comps, 80);
//! assert!(approx.results[0].1 >= exact.results[0].1);
//! ```

use pg_core::{beam_search_detailed, beam_search_quantized, BeamOutcome, Graph, QueryEngine};
use pg_metric::{CompactPoints, Dataset, Metric, QuantKind};

/// One batched top-`k` search interface over every index family — see the
/// [module docs](self) for the adapter map and the uniform `ef` semantics.
///
/// Implementations must be deterministic: [`SweepSearch::search_one`] is a
/// pure function of `(index, data, q, ef, k)`, and the provided
/// [`SweepSearch::search_batch`] preserves input order, so batch output is
/// identical for every thread count (the evaluation harness asserts this
/// before timing anything).
pub trait SweepSearch<P: Sync, M: Metric<P> + Sync>: Sync {
    /// Top-`k` search for one query at effort `ef`. Results ascend by true
    /// distance with ties broken by smaller id (the
    /// [`Dataset::k_nearest_brute`] order), so they are directly comparable
    /// against exact ground truth.
    fn search_one(&self, data: &Dataset<P, M>, q: &P, ef: usize, k: usize) -> BeamOutcome;

    /// [`SweepSearch::search_one`] for a whole query set, sharded across
    /// the thread pool. Outcome `i` is exactly `search_one(data,
    /// &queries[i], ef, k)` for every thread count.
    fn search_batch(
        &self,
        data: &Dataset<P, M>,
        queries: &[P],
        ef: usize,
        k: usize,
    ) -> Vec<BeamOutcome> {
        rayon::par_map(queries, |q| self.search_one(data, q, ef, k))
    }
}

/// Adapter for any plain [`Graph`] index (`G_net`, θ-graph, merged graph,
/// Vamana, NSW, slow-preprocessing DiskANN): routes queries with
/// [`pg_core::beam_search`] from a fixed entry vertex, batching via the
/// default order-preserving parallel map. The graph must have been built
/// over the dataset passed to the search methods (the same implicit
/// contract every routing call in the workspace has).
///
/// Entry-vertex semantics: beam search is start-sensitive, so the adapter
/// pins one entry (default `0`, override with [`GraphIndex::with_entry`] —
/// e.g. a medoid) to keep sweeps reproducible; frontier differences between
/// entry choices are themselves measurable by sweeping two adapters.
///
/// For timed sweeps prefer [`EngineIndex`], which serves batches through a
/// pre-built [`QueryEngine`]; this adapter is the dependency-light choice
/// for one-off scoring and tests.
#[derive(Debug, Clone)]
pub struct GraphIndex {
    /// The routed graph.
    pub graph: Graph,
    /// The fixed entry vertex every search starts from.
    pub entry: u32,
}

impl GraphIndex {
    /// Wraps a graph with entry vertex `0`.
    pub fn new(graph: Graph) -> Self {
        GraphIndex { graph, entry: 0 }
    }

    /// Overrides the entry vertex (must be `< graph.n()`, checked at search
    /// time by the routing code).
    pub fn with_entry(mut self, entry: u32) -> Self {
        self.entry = entry;
        self
    }
}

impl<P: Sync, M: Metric<P> + Sync> SweepSearch<P, M> for GraphIndex {
    fn search_one(&self, data: &Dataset<P, M>, q: &P, ef: usize, k: usize) -> BeamOutcome {
        beam_search_detailed(&self.graph, data, self.entry, q, ef, k)
    }
}

/// Adapter that owns a ready-to-serve [`QueryEngine`] — the batch path for
/// plain-graph indexes in **timed** sweeps: the engine (graph + dataset)
/// is constructed once, up front, so a timed `search_batch` measures pure
/// search work with zero per-call setup, exactly like production traffic.
/// ([`GraphIndex`] routes identically but re-shards through the generic
/// map; outcomes are bit-identical, only the engine plumbing differs.)
///
/// The dataset passed to the search methods must hold the same points the
/// engine was built over (same contract as [`GraphIndex`] and every
/// routing call): `search_one` routes over the caller's dataset,
/// `search_batch` over the engine's — identical by that contract.
#[derive(Debug, Clone)]
pub struct EngineIndex<P, M> {
    engine: QueryEngine<P, M>,
    entry: u32,
}

impl<P, M: Metric<P>> EngineIndex<P, M> {
    /// Wraps a built engine with entry vertex `0`.
    pub fn new(engine: QueryEngine<P, M>) -> Self {
        EngineIndex { engine, entry: 0 }
    }

    /// Overrides the entry vertex.
    pub fn with_entry(mut self, entry: u32) -> Self {
        self.entry = entry;
        self
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &QueryEngine<P, M> {
        &self.engine
    }
}

impl<P: Sync, M: Metric<P> + Sync> SweepSearch<P, M> for EngineIndex<P, M> {
    fn search_one(&self, data: &Dataset<P, M>, q: &P, ef: usize, k: usize) -> BeamOutcome {
        beam_search_detailed(self.engine.graph(), data, self.entry, q, ef, k)
    }

    /// [`QueryEngine::batch_beam_detailed`] over the pre-built engine — no
    /// per-call construction, no clones inside a caller's timing window.
    fn search_batch(
        &self,
        _data: &Dataset<P, M>,
        queries: &[P],
        ef: usize,
        k: usize,
    ) -> Vec<BeamOutcome> {
        let starts = vec![self.entry; queries.len()];
        self.engine
            .batch_beam_detailed(&starts, queries, ef, k)
            .outcomes
    }
}

/// Adapter that serves **quantized** search through a pre-built
/// [`QueryEngine`] plus a [`CompactPoints`] store: beam navigation runs on
/// the compact surrogate (`f32` or SQ8), then the whole candidate set is
/// re-ranked with exact `f64` distances before truncating to `k` — the
/// re-rank contract of `pg_metric::quant`. Reported results are therefore
/// in the same exact `(dist, id)` order every other adapter reports, so
/// frontiers for f64/f32/SQ8 storage are directly comparable on one plot.
///
/// Per-query `dist_comps` counts quantized surrogate evaluations **plus**
/// one exact evaluation per re-ranked candidate — the true cost of the
/// two-phase search, never just the cheap phase.
#[derive(Debug, Clone)]
pub struct QuantizedEngineIndex<P, M> {
    engine: QueryEngine<P, M>,
    compact: CompactPoints,
    entry: u32,
}

impl<P: Sync + AsRef<[f64]>, M: Metric<P> + Sync> QuantizedEngineIndex<P, M> {
    /// Quantizes the engine's own points at `kind` and wraps both with
    /// entry vertex `0`. Fails (with a description) only if the points
    /// cannot be encoded — empty set, ragged rows, non-finite coordinates.
    pub fn new(engine: QueryEngine<P, M>, kind: QuantKind) -> Result<Self, String> {
        let compact = engine.quantize(kind)?;
        Ok(QuantizedEngineIndex {
            engine,
            compact,
            entry: 0,
        })
    }

    /// Wraps an engine with an already-built compact store (e.g. one loaded
    /// from a version-2 snapshot). The store must describe exactly the
    /// engine's points.
    pub fn from_parts(engine: QueryEngine<P, M>, compact: CompactPoints) -> Self {
        QuantizedEngineIndex {
            engine,
            compact,
            entry: 0,
        }
    }

    /// Overrides the entry vertex.
    pub fn with_entry(mut self, entry: u32) -> Self {
        self.entry = entry;
        self
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &QueryEngine<P, M> {
        &self.engine
    }

    /// The compact store navigation runs on.
    pub fn compact(&self) -> &CompactPoints {
        &self.compact
    }
}

impl<P: Sync + AsRef<[f64]>, M: Metric<P> + Sync> SweepSearch<P, M> for QuantizedEngineIndex<P, M> {
    fn search_one(&self, data: &Dataset<P, M>, q: &P, ef: usize, k: usize) -> BeamOutcome {
        beam_search_quantized(
            self.engine.graph(),
            data,
            &self.compact,
            self.entry,
            q,
            ef,
            k,
        )
    }

    /// [`QueryEngine::batch_beam_quantized_detailed`] over the pre-built
    /// engine and store — the quantized analogue of [`EngineIndex`]'s
    /// batch path, with zero per-call setup.
    fn search_batch(
        &self,
        _data: &Dataset<P, M>,
        queries: &[P],
        ef: usize,
        k: usize,
    ) -> Vec<BeamOutcome> {
        let starts = vec![self.entry; queries.len()];
        self.engine
            .batch_beam_quantized_detailed(&self.compact, &starts, queries, ef, k)
            .outcomes
    }
}

/// Adapter for exact brute-force search: [`Dataset::k_nearest_brute`],
/// reported as a [`BeamOutcome`] with `dist_comps = n` (a full scan) and
/// `expansions = 0` (no graph is walked). `ef` is ignored — see the
/// [module docs](self). This is the exact reference every recall frontier
/// is scored against: its recall is 1.0 **by construction**, a property the
/// evaluation harness asserts as a self-check before trusting any sweep.
#[derive(Debug, Clone, Copy, Default)]
pub struct BruteIndex;

impl<P: Sync, M: Metric<P> + Sync> SweepSearch<P, M> for BruteIndex {
    fn search_one(&self, data: &Dataset<P, M>, q: &P, _ef: usize, k: usize) -> BeamOutcome {
        let results = data
            .k_nearest_brute(q, k)
            .into_iter()
            .map(|(i, d)| (i as u32, d))
            .collect();
        BeamOutcome {
            results,
            dist_comps: data.len() as u64,
            expansions: 0,
        }
    }
}

impl<P: Sync, M: Metric<P> + Sync> SweepSearch<P, M> for crate::Hnsw {
    /// [`Hnsw::search_detailed`](crate::Hnsw::search_detailed): greedy
    /// descent plus a ground-layer beam of effective width `ef.max(k)`.
    fn search_one(&self, data: &Dataset<P, M>, q: &P, ef: usize, k: usize) -> BeamOutcome {
        self.search_detailed(data, q, ef, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{nsw, vamana, Hnsw, HnswParams, NswParams, VamanaParams};
    use pg_core::GNet;
    use pg_metric::{Euclidean, FlatPoints, FlatRow};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_dataset(n: usize, seed: u64) -> Dataset<FlatRow, Euclidean> {
        let mut rng = StdRng::seed_from_u64(seed);
        FlatPoints::from_fn(n, 2, |_, out| {
            out.push(rng.random_range(0.0..30.0));
            out.push(rng.random_range(0.0..30.0));
        })
        .into_dataset(Euclidean)
    }

    fn random_queries(m: usize, seed: u64) -> Vec<FlatRow> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..m)
            .map(|_| {
                FlatRow::from(vec![
                    rng.random_range(0.0..30.0),
                    rng.random_range(0.0..30.0),
                ])
            })
            .collect()
    }

    #[test]
    fn brute_adapter_matches_k_nearest_brute_exactly() {
        let ds = random_dataset(120, 1);
        for q in random_queries(10, 2) {
            let out = BruteIndex.search_one(&ds, &q, 7, 4);
            let want: Vec<(u32, f64)> = ds
                .k_nearest_brute(&q, 4)
                .into_iter()
                .map(|(i, d)| (i as u32, d))
                .collect();
            assert_eq!(out.results, want);
            assert_eq!(out.dist_comps, 120);
            assert_eq!(out.expansions, 0);
        }
    }

    #[test]
    fn graph_adapter_batch_equals_one_by_one_for_every_thread_count() {
        let ds = random_dataset(200, 3);
        let pg = GNet::build(&ds, 1.0);
        let index = GraphIndex::new(pg.graph).with_entry(5);
        let queries = random_queries(24, 4);
        let solo: Vec<BeamOutcome> = queries
            .iter()
            .map(|q| index.search_one(&ds, q, 10, 3))
            .collect();
        for threads in [1, 2, 4] {
            let batch = rayon::with_threads(threads, || index.search_batch(&ds, &queries, 10, 3));
            assert_eq!(batch, solo, "diverged at {threads} threads");
        }
    }

    #[test]
    fn engine_adapter_agrees_with_graph_adapter_exactly() {
        let ds = random_dataset(220, 9);
        let pg = GNet::build(&ds, 1.0);
        let plain = GraphIndex::new(pg.graph.clone()).with_entry(3);
        let engined = EngineIndex::new(QueryEngine::new(pg.graph, ds.clone())).with_entry(3);
        let queries = random_queries(16, 10);
        for threads in [1, 4] {
            let a = rayon::with_threads(threads, || plain.search_batch(&ds, &queries, 9, 2));
            let b = rayon::with_threads(threads, || {
                // Engines resolve their worker count at construction, so
                // rebuild inside the pool override like a caller would.
                EngineIndex::new(QueryEngine::new(plain.graph.clone(), ds.clone()))
                    .with_entry(3)
                    .search_batch(&ds, &queries, 9, 2)
            });
            assert_eq!(a, b, "adapters diverged at {threads} threads");
        }
        // And the long-lived engine path agrees too.
        assert_eq!(
            engined.search_batch(&ds, &queries, 9, 2),
            plain.search_batch(&ds, &queries, 9, 2)
        );
        assert_eq!(
            engined.search_one(&ds, &queries[0], 9, 2),
            plain.search_one(&ds, &queries[0], 9, 2)
        );
    }

    #[test]
    fn hnsw_adapter_agrees_with_plain_search_and_counts_expansions() {
        let ds = random_dataset(300, 5);
        let h = Hnsw::build(&ds, HnswParams::default());
        for q in random_queries(12, 6) {
            let (res, comps) = h.search(&ds, &q, 24, 3);
            let out = SweepSearch::<FlatRow, Euclidean>::search_one(&h, &ds, &q, 24, 3);
            assert_eq!(out.results, res);
            assert_eq!(out.dist_comps, comps);
            assert!(out.expansions >= 1);
            assert!(out.expansions <= out.dist_comps);
        }
    }

    #[test]
    fn quantized_adapter_at_full_width_matches_the_exact_engine_adapter() {
        // At ef = n the candidate set is the whole (connected) graph, and
        // the exact re-rank makes the quantized adapter's output identical
        // to full-precision search — for both representations.
        let ds = random_dataset(130, 11);
        let pg = GNet::build(&ds, 1.0);
        let exact = EngineIndex::new(QueryEngine::new(pg.graph.clone(), ds.clone()));
        let queries = random_queries(10, 12);
        let n = ds.len();
        let want = exact.search_batch(&ds, &queries, n, 5);
        for kind in [QuantKind::F32, QuantKind::Sq8] {
            let quant =
                QuantizedEngineIndex::new(QueryEngine::new(pg.graph.clone(), ds.clone()), kind)
                    .unwrap();
            let got = quant.search_batch(&ds, &queries, n, 5);
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.results, w.results, "{} diverged", kind.name());
            }
        }
    }

    #[test]
    fn quantized_adapter_batch_equals_one_by_one_for_every_thread_count() {
        let ds = random_dataset(180, 13);
        let pg = GNet::build(&ds, 1.0);
        let queries = random_queries(20, 14);
        for kind in [QuantKind::F32, QuantKind::Sq8] {
            let solo: Vec<BeamOutcome> = {
                let index =
                    QuantizedEngineIndex::new(QueryEngine::new(pg.graph.clone(), ds.clone()), kind)
                        .unwrap()
                        .with_entry(2);
                queries
                    .iter()
                    .map(|q| index.search_one(&ds, q, 12, 3))
                    .collect()
            };
            for threads in [1, 2, 4] {
                let batch = rayon::with_threads(threads, || {
                    QuantizedEngineIndex::new(QueryEngine::new(pg.graph.clone(), ds.clone()), kind)
                        .unwrap()
                        .with_entry(2)
                        .search_batch(&ds, &queries, 12, 3)
                });
                assert_eq!(batch, solo, "{} diverged at {threads} threads", kind.name());
            }
        }
    }

    #[test]
    fn every_graph_family_is_sweepable_through_the_one_trait() {
        let ds = random_dataset(150, 7);
        let queries = random_queries(8, 8);
        let indexes: Vec<GraphIndex> = vec![
            GraphIndex::new(GNet::build(&ds, 1.0).graph),
            GraphIndex::new(vamana(&ds, VamanaParams::default())),
            GraphIndex::new(nsw(&ds, NswParams::default())),
        ];
        for index in &indexes {
            let batch = index.search_batch(&ds, &queries, 16, 2);
            assert_eq!(batch.len(), 8);
            for out in &batch {
                assert_eq!(out.results.len(), 2);
                assert!(out.results[0].1 <= out.results[1].1);
                assert!(out.dist_comps >= 1);
            }
        }
    }
}
