//! Navigable Small World graphs (Malkov et al. \[21\]) — the flat,
//! single-layer predecessor of HNSW: points are inserted in random order and
//! bidirectionally connected to the `M` nearest results of a beam search
//! over the graph built so far.
//!
//! # Searching an NSW graph
//!
//! [`nsw`] returns a plain [`Graph`], so queries route through the shared
//! [`pg_core::beam_search`] (or, behind the uniform sweep interface,
//! [`GraphIndex`](crate::GraphIndex)). The `ef` and tie-breaking semantics
//! are therefore exactly those documented on `beam_search`: effective beam
//! width `ef.max(k)` is *not* applied here — `beam_search` keeps `ef` as
//! given and truncates to `k` at the end — and all orderings break distance
//! ties by smaller id, identically to brute force. The construction-time
//! beam below mirrors that rule (its candidate heap orders by `(dist, id)`),
//! so the built graph is deterministic for a seed at every thread count.

use pg_core::Graph;
use pg_metric::{Dataset, Metric};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// NSW construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct NswParams {
    /// Bidirectional connections per insertion.
    pub m: usize,
    /// Construction beam width.
    pub ef_construction: usize,
    /// RNG seed (insertion order).
    pub seed: u64,
}

impl Default for NswParams {
    fn default() -> Self {
        NswParams {
            m: 10,
            ef_construction: 48,
            seed: 0x0115,
        }
    }
}

/// Builds an NSW graph.
pub fn nsw<P, M: Metric<P>>(data: &Dataset<P, M>, params: NswParams) -> Graph {
    let n = data.len();
    assert!(n >= 1);
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut rng);

    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut inserted: Vec<u32> = Vec::with_capacity(n);
    for &p in &order {
        if inserted.is_empty() {
            inserted.push(p as u32);
            continue;
        }
        let entry = inserted[0];
        let found = beam(data, &adj, entry, data.point(p), params.ef_construction);
        for &(_, v) in found.iter().take(params.m) {
            adj[p].push(v);
            adj[v as usize].push(p as u32);
        }
        inserted.push(p as u32);
    }
    Graph::from_adjacency(adj)
}

#[derive(PartialEq)]
struct C(f64, u32);
impl Eq for C {}
impl PartialOrd for C {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for C {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
    }
}

fn beam<P, M: Metric<P>>(
    data: &Dataset<P, M>,
    adj: &[Vec<u32>],
    start: u32,
    q: &P,
    ef: usize,
) -> Vec<(f64, u32)> {
    let mut visited = vec![false; data.len()];
    visited[start as usize] = true;
    let d0 = data.dist_to(start as usize, q);
    let mut frontier = BinaryHeap::new();
    let mut results: BinaryHeap<C> = BinaryHeap::new();
    frontier.push(Reverse(C(d0, start)));
    results.push(C(d0, start));
    while let Some(Reverse(C(d, v))) = frontier.pop() {
        let worst = results.peek().map(|c| c.0).unwrap_or(f64::INFINITY);
        if results.len() >= ef && d > worst {
            break;
        }
        for &nb in &adj[v as usize] {
            if visited[nb as usize] {
                continue;
            }
            visited[nb as usize] = true;
            let dn = data.dist_to(nb as usize, q);
            let worst = results.peek().map(|c| c.0).unwrap_or(f64::INFINITY);
            if results.len() < ef || dn < worst {
                frontier.push(Reverse(C(dn, nb)));
                results.push(C(dn, nb));
                if results.len() > ef {
                    results.pop();
                }
            }
        }
    }
    let mut out: Vec<(f64, u32)> = results.into_iter().map(|C(d, v)| (d, v)).collect();
    out.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_metric::{Euclidean, FlatPoints, FlatRow};
    use rand::RngExt;

    // Flat-backed on purpose -- see the sibling baselines' test helpers.
    fn random_dataset(n: usize, seed: u64) -> Dataset<FlatRow, Euclidean> {
        let mut rng = StdRng::seed_from_u64(seed);
        FlatPoints::from_fn(n, 2, |_, out| {
            out.push(rng.random_range(0.0..30.0));
            out.push(rng.random_range(0.0..30.0));
        })
        .into_dataset(Euclidean)
    }

    #[test]
    fn nsw_recall_is_reasonable() {
        let ds = random_dataset(300, 1);
        let g = nsw(&ds, NswParams::default());
        let mut rng = StdRng::seed_from_u64(10);
        let mut hits = 0;
        let trials = 40;
        for _ in 0..trials {
            let q: FlatRow = vec![rng.random_range(0.0..30.0), rng.random_range(0.0..30.0)].into();
            let (exact, _) = ds.nearest_brute(&q);
            let (res, _) = pg_core::beam_search(&g, &ds, 0, &q, 32, 1);
            if res[0].0 as usize == exact {
                hits += 1;
            }
        }
        assert!(hits * 100 >= trials * 85, "recall too low: {hits}/{trials}");
    }

    #[test]
    fn nsw_graph_is_connected_enough() {
        let ds = random_dataset(200, 2);
        let g = nsw(&ds, NswParams::default());
        assert_eq!(g.sink_count(), 0);
        // Undirected-style construction: every vertex has >= m/2 edges.
        assert!(g.avg_out_degree() >= NswParams::default().m as f64);
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = random_dataset(150, 3);
        assert_eq!(
            nsw(&ds, NswParams::default()),
            nsw(&ds, NswParams::default())
        );
    }
}
