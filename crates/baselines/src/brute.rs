//! Brute-force exact nearest neighbor — the recall ground truth and the
//! `Ω(n)`-query-time end of the trade-off spectrum.
//!
//! Top-`k` brute force (the ground truth of the `pg_eval` frontier sweeps)
//! lives on the dataset itself ([`Dataset::k_nearest_brute`]) and behind
//! the uniform sweep interface as [`BruteIndex`](crate::BruteIndex); this
//! module keeps the paper-shaped single-NN entry point. All three report
//! the same `(dist, id)`-ascending order and cost exactly `n` distance
//! computations per query.

use pg_metric::{Dataset, Metric};

/// Exact nearest neighbor by linear scan. Returns `(id, distance,
/// distance_computations)`; the last component is always `n`. Ties break by
/// smaller id (the first minimum the scan meets), consistent with
/// [`Dataset::k_nearest_brute`] and the graph searches.
pub fn brute_force_nn<P, M: Metric<P>>(data: &Dataset<P, M>, q: &P) -> (u32, f64, u64) {
    let (id, d) = data.nearest_brute(q);
    (id as u32, d, data.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_metric::{Counting, Euclidean};

    #[test]
    fn brute_force_cost_is_n() {
        let pts: Vec<Vec<f64>> = (0..25).map(|i| vec![i as f64]).collect();
        let ds = Dataset::new(pts, Counting::new(Euclidean));
        let (id, d, comps) = brute_force_nn(&ds, &vec![7.4]);
        assert_eq!(id, 7);
        assert!((d - 0.4).abs() < 1e-12);
        assert_eq!(comps, 25);
        assert_eq!(ds.metric().count(), 25);
    }
}
