//! Baseline ANN indexes the paper positions itself against (Section 1.2),
//! implemented from scratch:
//!
//! * [`mod@diskann`] — the **slow-preprocessing DiskANN** (α-pruned graph) that
//!   Indyk–Xu \[18\] showed to be the only popular proximity graph with
//!   non-trivial worst-case guarantees (`O(n^3)`-ish construction,
//!   `(α+1)/(α-1)`-navigability), plus the practical **Vamana** heuristic
//!   (random graph + two α-robust-prune passes) used by DiskANN in practice;
//! * [`mod@hnsw`] — Hierarchical Navigable Small World graphs \[22\], the dominant
//!   practical proximity-graph index;
//! * [`mod@nsw`] — the flat small-world predecessor \[21\];
//! * [`mod@brute`] — exact brute-force search, the recall ground truth.
//!
//! All constructions emit [`pg_core::Graph`]s (HNSW additionally keeps its
//! layer stack), so the comparison experiments can route queries through the
//! exact same `greedy`/beam code paths and count distance computations with
//! the same instrumentation. The [`adapter`] module goes one step further
//! and puts every family — plain graphs, HNSW's layered search, and brute
//! force — behind the single [`SweepSearch`] trait, which is what the
//! evaluation crate (`pg_eval`) sweeps recall/QPS frontiers through.
//!
//! Where this crate sits in the workspace is mapped in `ARCHITECTURE.md`
//! at the repository root.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adapter;
pub mod brute;
pub mod diskann;
pub mod hnsw;
pub mod nsw;

use pg_metric::{Dataset, Metric};

/// Below this many candidates a parallel distance-labelling pass costs more
/// in thread startup than it saves; the sequential path is used instead.
pub(crate) const PAR_DIST_THRESHOLD: usize = 512;

/// Distance-labels `cands` against point `p`, **in input order** — the
/// neighbor-selection primitive of the HNSW/Vamana constructions. Over the
/// immutable dataset snapshot each evaluation is independent, so large lists
/// are sharded across the thread pool; the order-preserving map keeps the
/// output (and therefore the built graph) bit-identical to the sequential
/// path for any thread count.
pub(crate) fn label_dists<P: Sync, M: Metric<P> + Sync>(
    data: &Dataset<P, M>,
    p: usize,
    cands: &[u32],
) -> Vec<(f64, u32)> {
    if cands.len() >= PAR_DIST_THRESHOLD {
        rayon::par_map(cands, |&v| (data.dist(p, v as usize), v))
    } else {
        cands
            .iter()
            .map(|&v| (data.dist(p, v as usize), v))
            .collect()
    }
}

pub use adapter::{BruteIndex, EngineIndex, GraphIndex, QuantizedEngineIndex, SweepSearch};
pub use brute::brute_force_nn;
pub use diskann::{slow_preprocessing, vamana, VamanaParams};
pub use hnsw::{Hnsw, HnswParams};
pub use nsw::{nsw, NswParams};
