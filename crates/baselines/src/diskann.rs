//! DiskANN-style α-pruned graphs.
//!
//! Two constructions:
//!
//! * [`slow_preprocessing`] — the variant analyzed by Indyk–Xu \[18\] and
//!   cited by the paper in Section 1.2: for every point, scan all others in
//!   ascending distance order and keep a candidate `v` unless an already
//!   kept `u` satisfies `α · D(u, v) <= D(p, v)`. The result satisfies the
//!   α-shortcut property — for every `(p, v)` either the edge `(p, v)`
//!   exists or some kept `u` has `D(u, v) <= D(p, v)/α` — which makes the
//!   graph `(α+1)/(α-1)`-navigable (a calculation the unit tests replay).
//!   Construction is `Θ(n^2 log n + n^2 · deg)` distance work: this is the
//!   quadratic-barrier baseline that Theorem 1.1's near-linear construction
//!   beats.
//! * [`vamana`] — the practical heuristic actually shipped by DiskANN \[19\]:
//!   a random regular graph improved by two passes of beam search +
//!   α-robust-prune, with reverse-edge insertion.

use pg_core::{Graph, GraphBuilder};
use pg_metric::{Dataset, Metric};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

/// The slow-preprocessing α-pruned DiskANN graph (see module docs).
/// Requires `alpha > 1`.
///
/// Each point's scan-and-prune is independent of every other point's, so the
/// per-point neighbor selection is sharded across the thread pool over the
/// immutable dataset; the kept lists are re-assembled in id order, making
/// the graph bit-identical to the sequential construction for any thread
/// count (asserted in tests). This is the quadratic-barrier baseline — the
/// pool divides the wall clock, not the `Θ(n^2 log n)` distance count.
pub fn slow_preprocessing<P: Sync, M: Metric<P> + Sync>(data: &Dataset<P, M>, alpha: f64) -> Graph {
    assert!(alpha > 1.0, "alpha must exceed 1, got {alpha}");
    let n = data.len();
    let mut builder = GraphBuilder::new(n);
    let per_point = rayon::par_map_range(n, |p| {
        let mut order: Vec<(f64, u32)> = (0..n)
            .filter(|&v| v != p)
            .map(|v| (data.dist(p, v), v as u32))
            .collect();
        order.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut kept: Vec<(u32, f64)> = Vec::new();
        'cand: for (dpv, v) in order {
            for &(u, _) in &kept {
                if alpha * data.dist(u as usize, v as usize) <= dpv {
                    continue 'cand; // v is covered by u.
                }
            }
            kept.push((v, dpv));
        }
        kept
    });
    for (p, kept) in per_point.into_iter().enumerate() {
        for (v, _) in kept {
            builder.add_edge(p as u32, v);
        }
    }
    builder.build()
}

/// Parameters of the practical Vamana construction.
#[derive(Debug, Clone, Copy)]
pub struct VamanaParams {
    /// Maximum out-degree `R`.
    pub r: usize,
    /// Beam width `L` used during construction searches.
    pub l: usize,
    /// Pruning slack `α > 1`.
    pub alpha: f64,
    /// RNG seed (initial random graph and insertion order).
    pub seed: u64,
    /// Number of improvement passes (DiskANN uses 2).
    pub passes: usize,
}

impl Default for VamanaParams {
    fn default() -> Self {
        VamanaParams {
            r: 24,
            l: 64,
            alpha: 1.2,
            seed: 0xD15CA,
            passes: 2,
        }
    }
}

/// The practical DiskANN/Vamana graph (see module docs).
///
/// Vamana's improvement passes mutate the graph point by point, so they stay
/// sequential for determinism; the per-point robust-prune distance labelling
/// routes through the pool-aware `label_dists` helper (parallel past its
/// 512-candidate threshold, sequential below it), reading only immutable
/// snapshots — the result is bit-identical for any thread count.
pub fn vamana<P: Sync, M: Metric<P> + Sync>(data: &Dataset<P, M>, params: VamanaParams) -> Graph {
    let n = data.len();
    assert!(n >= 2);
    let r = params.r.min(n - 1).max(1);
    let mut rng = StdRng::seed_from_u64(params.seed);

    // Random r-regular-ish initial adjacency.
    let mut adj: Vec<Vec<u32>> = (0..n)
        .map(|p| {
            let mut nb = Vec::with_capacity(r);
            while nb.len() < r {
                let v = rng.random_range(0..n) as u32;
                if v as usize != p && !nb.contains(&v) {
                    nb.push(v);
                }
            }
            nb
        })
        .collect();

    let medoid = approx_medoid(data, &mut rng);

    for _pass in 0..params.passes {
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut rng);
        for &p in &order {
            // Beam search for p from the medoid over the current graph.
            let visited = beam_visited(data, &adj, medoid, data.point(p), params.l);
            let mut candidates: Vec<u32> = visited;
            candidates.extend_from_slice(&adj[p]);
            candidates.sort_unstable();
            candidates.dedup();
            candidates.retain(|&v| v as usize != p);
            adj[p] = robust_prune(data, p, candidates, params.alpha, r);
            // Reverse edges with pruning on overflow.
            let out = adj[p].clone();
            for &u in &out {
                if !adj[u as usize].contains(&(p as u32)) {
                    adj[u as usize].push(p as u32);
                    if adj[u as usize].len() > r {
                        let cands = std::mem::take(&mut adj[u as usize]);
                        adj[u as usize] = robust_prune(data, u as usize, cands, params.alpha, r);
                    }
                }
            }
        }
    }
    Graph::from_adjacency(adj)
}

/// The α-robust-prune of DiskANN: keep the closest candidate, drop all
/// candidates it α-covers, repeat until `r` neighbors are kept.
fn robust_prune<P: Sync, M: Metric<P> + Sync>(
    data: &Dataset<P, M>,
    p: usize,
    mut candidates: Vec<u32>,
    alpha: f64,
    r: usize,
) -> Vec<u32> {
    candidates.retain(|&v| v as usize != p);
    candidates.sort_unstable();
    candidates.dedup();
    let mut with_d: Vec<(f64, u32)> = crate::label_dists(data, p, &candidates);
    with_d.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let mut kept: Vec<u32> = Vec::with_capacity(r);
    let mut alive: Vec<(f64, u32)> = with_d;
    while kept.len() < r && !alive.is_empty() {
        let (d_best, best) = alive.remove(0);
        kept.push(best);
        alive.retain(|&(dpv, v)| {
            let duv = data.dist(best as usize, v as usize);
            // Keep v alive unless best α-covers it.
            alpha * duv > dpv.max(d_best)
        });
    }
    kept
}

/// Beam search over a mutable adjacency list; returns the visited set
/// (the candidate pool for robust pruning).
fn beam_visited<P, M: Metric<P>>(
    data: &Dataset<P, M>,
    adj: &[Vec<u32>],
    start: usize,
    q: &P,
    ef: usize,
) -> Vec<u32> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    #[derive(PartialEq)]
    struct C(f64, u32);
    impl Eq for C {}
    impl PartialOrd for C {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for C {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
        }
    }

    let mut visited = vec![false; data.len()];
    let mut visited_list = Vec::new();
    let d0 = data.dist_to(start, q);
    visited[start] = true;
    visited_list.push(start as u32);
    let mut frontier = BinaryHeap::new();
    let mut results: BinaryHeap<C> = BinaryHeap::new();
    frontier.push(Reverse(C(d0, start as u32)));
    results.push(C(d0, start as u32));
    while let Some(Reverse(C(d, v))) = frontier.pop() {
        let worst = results.peek().map(|c| c.0).unwrap_or(f64::INFINITY);
        if results.len() >= ef && d > worst {
            break;
        }
        for &nb in &adj[v as usize] {
            if visited[nb as usize] {
                continue;
            }
            visited[nb as usize] = true;
            visited_list.push(nb);
            let dn = data.dist_to(nb as usize, q);
            let worst = results.peek().map(|c| c.0).unwrap_or(f64::INFINITY);
            if results.len() < ef || dn < worst {
                frontier.push(Reverse(C(dn, nb)));
                results.push(C(dn, nb));
                if results.len() > ef {
                    results.pop();
                }
            }
        }
    }
    visited_list
}

/// Approximate medoid: the sampled point minimizing distance to a random
/// probe set. The candidate pool is capped at ~128 entries of ~16 distance
/// evaluations each — far below the parallel threshold — so this stays a
/// plain sequential scan (spawning workers would cost more than the work).
fn approx_medoid<P, M: Metric<P>>(data: &Dataset<P, M>, rng: &mut StdRng) -> usize {
    let n = data.len();
    let probes: Vec<usize> = (0..16.min(n)).map(|_| rng.random_range(0..n)).collect();
    (0..n)
        .step_by((n / 64).max(1))
        .min_by(|&a, &b| {
            let sa: f64 = probes.iter().map(|&p| data.dist(a, p)).sum();
            let sb: f64 = probes.iter().map(|&p| data.dist(b, p)).sum();
            sa.total_cmp(&sb)
        })
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_core::navigability::{check_navigable, check_pg_exhaustive, Starts};
    use pg_core::search::greedy;
    use pg_metric::{Dataset, Euclidean, FlatPoints, FlatRow};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    // Flat-backed on purpose: the baseline builds and searches are generic
    // over the point type, and these tests double as coverage that they run
    // on the contiguous layout the experiments use.
    fn random_dataset(n: usize, d: usize, seed: u64) -> Dataset<FlatRow, Euclidean> {
        let mut rng = StdRng::seed_from_u64(seed);
        FlatPoints::from_fn(n, d, |_, out| {
            out.extend((0..d).map(|_| rng.random_range(0.0..30.0)))
        })
        .into_dataset(Euclidean)
    }

    #[test]
    fn slow_preprocessing_satisfies_alpha_shortcut_property() {
        let ds = random_dataset(70, 2, 1);
        let alpha = 2.0;
        let g = slow_preprocessing(&ds, alpha);
        for p in 0..70usize {
            for v in 0..70usize {
                if p == v || g.has_edge(p as u32, v as u32) {
                    continue;
                }
                let dpv = ds.dist(p, v);
                let covered = g
                    .neighbors(p as u32)
                    .iter()
                    .any(|&u| alpha * ds.dist(u as usize, v) <= dpv);
                assert!(covered, "pair ({p}, {v}) neither edge nor covered");
            }
        }
    }

    #[test]
    fn slow_preprocessing_is_navigable_with_indyk_xu_ratio() {
        // α-shortcut => (α+1)/(α-1)-navigable: for α = 2 the ratio is 3,
        // i.e. ε = 2.
        let ds = random_dataset(60, 2, 2);
        let g = slow_preprocessing(&ds, 2.0);
        let mut rng = StdRng::seed_from_u64(20);
        let queries: Vec<FlatRow> = (0..15)
            .map(|_| vec![rng.random_range(-5.0..35.0), rng.random_range(-5.0..35.0)].into())
            .collect();
        check_navigable(&g, &ds, &queries, 2.0).unwrap();
        check_pg_exhaustive(&g, &ds, &queries, 2.0, Starts::Stride(7)).unwrap();
    }

    #[test]
    fn larger_alpha_gives_more_edges_and_better_ratio() {
        let ds = random_dataset(80, 2, 3);
        let g_small = slow_preprocessing(&ds, 1.1);
        let g_big = slow_preprocessing(&ds, 3.0);
        assert!(
            g_big.edge_count() > g_small.edge_count(),
            "α = 3 ({}) should out-edge α = 1.1 ({})",
            g_big.edge_count(),
            g_small.edge_count()
        );
        // α = 3: ratio (α+1)/(α-1) = 2, i.e. ε = 1.
        let mut rng = StdRng::seed_from_u64(21);
        let queries: Vec<FlatRow> = (0..10)
            .map(|_| vec![rng.random_range(-5.0..35.0), rng.random_range(-5.0..35.0)].into())
            .collect();
        check_navigable(&g_big, &ds, &queries, 1.0).unwrap();
    }

    #[test]
    fn vamana_recall_is_high_on_random_data() {
        let ds = random_dataset(300, 2, 4);
        let g = vamana(&ds, VamanaParams::default());
        assert!(g.max_out_degree() <= VamanaParams::default().r);
        let mut rng = StdRng::seed_from_u64(22);
        let mut hits = 0;
        let trials = 50;
        for _ in 0..trials {
            let q: FlatRow = vec![rng.random_range(0.0..30.0), rng.random_range(0.0..30.0)].into();
            let (exact, _) = ds.nearest_brute(&q);
            let (res, _) = pg_core::beam_search(&g, &ds, 0, &q, 32, 1);
            if res[0].0 as usize == exact {
                hits += 1;
            }
        }
        assert!(hits * 100 >= trials * 90, "recall too low: {hits}/{trials}");
    }

    #[test]
    fn vamana_greedy_converges_near_nn() {
        let ds = random_dataset(200, 2, 5);
        let g = vamana(&ds, VamanaParams::default());
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..20 {
            let q: FlatRow = vec![rng.random_range(0.0..30.0), rng.random_range(0.0..30.0)].into();
            let (_, dstar) = ds.nearest_brute(&q);
            let out = greedy(&g, &ds, rng.random_range(0..200) as u32, &q);
            assert!(
                out.result_dist <= 5.0 * dstar + 1.0,
                "greedy landed at {} vs exact {dstar}",
                out.result_dist
            );
        }
    }

    #[test]
    fn robust_prune_respects_degree_bound() {
        let ds = random_dataset(100, 2, 6);
        let cands: Vec<u32> = (1..100).collect();
        let kept = robust_prune(&ds, 0, cands, 1.2, 10);
        assert!(kept.len() <= 10);
        assert!(!kept.is_empty());
        // The nearest candidate is always kept.
        let (nearest, _) = ds.nearest_excluding(0);
        assert!(kept.contains(&(nearest as u32)));
    }

    #[test]
    fn parallel_construction_is_thread_count_invariant() {
        let ds = random_dataset(90, 2, 8);
        let slow1 = rayon::with_threads(1, || slow_preprocessing(&ds, 2.0));
        let vam1 = rayon::with_threads(1, || vamana(&ds, VamanaParams::default()));
        for threads in [2, 5] {
            let slow_t = rayon::with_threads(threads, || slow_preprocessing(&ds, 2.0));
            let vam_t = rayon::with_threads(threads, || vamana(&ds, VamanaParams::default()));
            assert_eq!(
                slow1, slow_t,
                "slow-preprocessing diverged at {threads} threads"
            );
            assert_eq!(vam1, vam_t, "vamana diverged at {threads} threads");
        }
    }

    #[test]
    fn vamana_is_deterministic_for_a_seed() {
        let ds = random_dataset(80, 2, 7);
        let g1 = vamana(&ds, VamanaParams::default());
        let g2 = vamana(&ds, VamanaParams::default());
        assert_eq!(g1, g2);
    }
}
