//! Hierarchical Navigable Small World graphs (Malkov & Yashunin \[22\]) —
//! the dominant practical proximity-graph index, reimplemented from scratch
//! as the empirical baseline of the comparison experiments.
//!
//! Standard construction: every point draws a top level from a geometric
//! distribution (`l = floor(-ln U * mL)`, `mL = 1/ln M`); insertion descends
//! greedily to its top level, then runs an `ef_construction`-wide beam on
//! each level downwards, connecting to the `M` selected neighbors (simple
//! nearest selection or the distance-diversifying heuristic) with
//! bidirectional edges and degree capping (`M_max`, `2M` on the ground
//! layer).

use pg_core::{BeamOutcome, Graph};
use pg_metric::{Dataset, Metric};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// HNSW construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct HnswParams {
    /// Connectivity `M` (selected neighbors per insertion per layer).
    pub m: usize,
    /// Construction beam width `ef_construction`.
    pub ef_construction: usize,
    /// RNG seed (level draws).
    pub seed: u64,
    /// Use the neighbor-diversification heuristic (Algorithm 4 of \[22\])
    /// instead of plain nearest selection.
    pub heuristic: bool,
}

impl Default for HnswParams {
    fn default() -> Self {
        HnswParams {
            m: 12,
            ef_construction: 64,
            seed: 0x45B0,
            heuristic: true,
        }
    }
}

/// A built HNSW index: per-layer graphs plus the entry point.
#[derive(Debug, Clone)]
pub struct Hnsw {
    /// Layer adjacency (layer 0 = ground layer containing all points).
    layers: Vec<Vec<Vec<u32>>>,
    /// Top level of each point (`level[p] = l` means `p` exists on layers
    /// `0..=l`).
    levels: Vec<usize>,
    /// Entry point (a point on the top layer).
    entry: u32,
    params: HnswParams,
}

#[derive(PartialEq)]
struct C(f64, u32);
impl Eq for C {}
impl PartialOrd for C {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for C {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
    }
}

impl Hnsw {
    /// Builds the index by sequential insertion.
    ///
    /// Insertion order is inherently sequential (each point searches the
    /// graph built so far), so the build loop is not sharded. Neighbor
    /// re-pruning routes its candidate distance labelling through the
    /// thread-pool-aware `label_dists` helper, which engages the pool only
    /// past a 512-candidate threshold — at default parameters (`M = 12`,
    /// candidate lists ≈ `M_max + 1`) the build therefore runs effectively
    /// sequentially, and stays bit-identical for any thread count.
    pub fn build<P: Sync, M: Metric<P> + Sync>(data: &Dataset<P, M>, params: HnswParams) -> Self {
        let n = data.len();
        assert!(n >= 1);
        let ml = 1.0 / (params.m as f64).ln();
        let mut rng = StdRng::seed_from_u64(params.seed);
        let levels: Vec<usize> = (0..n)
            .map(|_| {
                let u: f64 = rng.random_range(1e-12..1.0);
                ((-u.ln()) * ml).floor() as usize
            })
            .collect();
        let max_level = levels.iter().copied().max().unwrap_or(0);
        let mut layers: Vec<Vec<Vec<u32>>> = (0..=max_level).map(|_| vec![Vec::new(); n]).collect();

        let mut index = Hnsw {
            layers: Vec::new(),
            levels: levels.clone(),
            entry: 0,
            params,
        };

        // Insert points one by one (point 0 bootstraps as entry).
        let mut entry = 0u32;
        let mut entry_level = levels[0];
        for p in 1..n {
            let p_level = levels[p];
            let q = data.point(p);
            let mut cur = entry;
            // Greedy descent through layers above p's top level.
            let mut lvl = entry_level;
            while lvl > p_level {
                cur = greedy_layer(data, &layers[lvl], cur, q);
                lvl -= 1;
            }
            // Beam insertion from min(entry_level, p_level) down to 0.
            let start_lvl = p_level.min(entry_level);
            let mut eps = vec![cur];
            for l in (0..=start_lvl).rev() {
                let found = search_layer(data, &layers[l], &eps, q, params.ef_construction);
                let m_max = if l == 0 { 2 * params.m } else { params.m };
                let selected = if params.heuristic {
                    select_heuristic(data, p, &found, params.m)
                } else {
                    found.iter().take(params.m).map(|&(_, v)| v).collect()
                };
                for &u in &selected {
                    layers[l][p].push(u);
                    layers[l][u as usize].push(p as u32);
                    if layers[l][u as usize].len() > m_max {
                        shrink(data, &mut layers[l], u as usize, m_max, params.heuristic);
                    }
                }
                if layers[l][p].len() > m_max {
                    shrink(data, &mut layers[l], p, m_max, params.heuristic);
                }
                eps = found.iter().map(|&(_, v)| v).collect();
            }
            if p_level > entry_level {
                entry = p as u32;
                entry_level = p_level;
            }
        }

        index.layers = layers;
        index.entry = entry;
        index
    }

    /// Searches for the `k` nearest neighbors of `q`.
    ///
    /// Standard two-phase HNSW search: a greedy (`ef = 1`) descent through
    /// every layer above the ground layer, then one `SEARCH-LAYER` beam on
    /// layer 0.
    ///
    /// **`ef` semantics.** `ef` is the ground-layer beam width — the size of
    /// the best-candidates set the beam maintains, *not* the result count.
    /// The effective width is `ef.max(k)` (a beam narrower than `k` could
    /// not hold `k` results), so `ef` values below `k` are equivalent to
    /// `ef = k`. Raising `ef` trades distance computations for recall; `ef`
    /// does not affect the descent phase.
    ///
    /// **Ordering and tie-breaking.** Results are ascending by true
    /// distance with ties broken by smaller id — the same `(dist, id)`
    /// order as [`pg_metric::Dataset::k_nearest_brute`] and
    /// [`pg_core::beam_search`], so result lists are directly comparable
    /// across index families and against brute-force ground truth. The
    /// frontier/result heaps use the same tie rule internally, which makes
    /// the whole search deterministic: equal-distance candidates at the
    /// beam boundary are kept or dropped by id, never by heap insertion
    /// order.
    ///
    /// Returns results and the distance-computation count (when `data`'s
    /// metric is wrapped in `Counting`, both agree). [`Hnsw::search_detailed`]
    /// additionally reports the expansion count.
    pub fn search<P, M: Metric<P>>(
        &self,
        data: &Dataset<P, M>,
        q: &P,
        ef: usize,
        k: usize,
    ) -> (Vec<(u32, f64)>, u64) {
        let out = self.search_detailed(data, q, ef, k);
        (out.results, out.dist_comps)
    }

    /// [`Hnsw::search`] with full per-query accounting: identical results
    /// and `dist_comps` (the plain method delegates here), plus the number
    /// of expanded vertices — every greedy step of the descent phase and
    /// every ground-layer vertex whose neighbor list the beam scanned. This
    /// is the [`BeamOutcome`] detail the evaluation layer (`pg_eval`)
    /// scores, making HNSW sweepable through the same
    /// [`SweepSearch`](crate::SweepSearch) interface as the graph indexes.
    pub fn search_detailed<P, M: Metric<P>>(
        &self,
        data: &Dataset<P, M>,
        q: &P,
        ef: usize,
        k: usize,
    ) -> BeamOutcome {
        let mut comps: u64 = 0;
        let mut expansions: u64 = 0;
        let mut cur = self.entry;
        for lvl in (1..self.layers.len()).rev() {
            cur =
                greedy_layer_detailed(data, &self.layers[lvl], cur, q, &mut comps, &mut expansions);
        }
        let (found, c, e) = search_layer_detailed(data, &self.layers[0], &[cur], q, ef.max(k));
        comps += c;
        expansions += e;
        let mut out: Vec<(u32, f64)> = found.into_iter().map(|(d, v)| (v, d)).collect();
        out.truncate(k);
        BeamOutcome {
            results: out,
            dist_comps: comps,
            expansions,
        }
    }

    /// The ground layer as an immutable [`Graph`] (for degree statistics
    /// and for routing with the paper's plain `greedy`).
    pub fn ground_layer(&self) -> Graph {
        Graph::from_adjacency(self.layers[0].clone())
    }

    /// Number of layers.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Total directed edges across all layers.
    pub fn total_edges(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.iter().map(|nb| nb.len()).sum::<usize>())
            .sum()
    }

    /// The entry point id.
    pub fn entry_point(&self) -> u32 {
        self.entry
    }

    /// Top level of point `p`.
    pub fn level_of(&self, p: usize) -> usize {
        self.levels[p]
    }

    /// The parameters the index was built with.
    pub fn params(&self) -> HnswParams {
        self.params
    }
}

/// Greedy hill descent on one layer (ef = 1).
fn greedy_layer<P, M: Metric<P>>(
    data: &Dataset<P, M>,
    layer: &[Vec<u32>],
    start: u32,
    q: &P,
) -> u32 {
    let mut comps = 0u64;
    let mut expansions = 0u64;
    greedy_layer_detailed(data, layer, start, q, &mut comps, &mut expansions)
}

/// One greedy descent step sequence with full accounting: `expansions`
/// counts neighbor-list scans (one per vertex the walk stands on), the
/// layered analogue of a graph-walk hop.
fn greedy_layer_detailed<P, M: Metric<P>>(
    data: &Dataset<P, M>,
    layer: &[Vec<u32>],
    start: u32,
    q: &P,
    comps: &mut u64,
    expansions: &mut u64,
) -> u32 {
    let mut cur = start;
    *comps += 1;
    let mut d_cur = data.dist_to(cur as usize, q);
    loop {
        let mut improved = false;
        *expansions += 1;
        for &nb in &layer[cur as usize] {
            *comps += 1;
            let d = data.dist_to(nb as usize, q);
            if d < d_cur {
                cur = nb;
                d_cur = d;
                improved = true;
            }
        }
        if !improved {
            return cur;
        }
    }
}

/// `SEARCH-LAYER` of \[22\]: beam of width `ef` from the given entry points.
/// Returns `(dist, id)` ascending.
fn search_layer<P, M: Metric<P>>(
    data: &Dataset<P, M>,
    layer: &[Vec<u32>],
    entries: &[u32],
    q: &P,
    ef: usize,
) -> Vec<(f64, u32)> {
    search_layer_detailed(data, layer, entries, q, ef).0
}

fn search_layer_detailed<P, M: Metric<P>>(
    data: &Dataset<P, M>,
    layer: &[Vec<u32>],
    entries: &[u32],
    q: &P,
    ef: usize,
) -> (Vec<(f64, u32)>, u64, u64) {
    let mut comps = 0u64;
    let mut expansions = 0u64;
    let mut visited = vec![false; data.len()];
    let mut frontier: BinaryHeap<Reverse<C>> = BinaryHeap::new();
    let mut results: BinaryHeap<C> = BinaryHeap::new();
    for &e in entries {
        if visited[e as usize] {
            continue;
        }
        visited[e as usize] = true;
        comps += 1;
        let d = data.dist_to(e as usize, q);
        frontier.push(Reverse(C(d, e)));
        results.push(C(d, e));
        if results.len() > ef {
            results.pop();
        }
    }
    while let Some(Reverse(C(d, v))) = frontier.pop() {
        let worst = results.peek().map(|c| c.0).unwrap_or(f64::INFINITY);
        if results.len() >= ef && d > worst {
            break;
        }
        expansions += 1;
        for &nb in &layer[v as usize] {
            if visited[nb as usize] {
                continue;
            }
            visited[nb as usize] = true;
            comps += 1;
            let dn = data.dist_to(nb as usize, q);
            let worst = results.peek().map(|c| c.0).unwrap_or(f64::INFINITY);
            if results.len() < ef || dn < worst {
                frontier.push(Reverse(C(dn, nb)));
                results.push(C(dn, nb));
                if results.len() > ef {
                    results.pop();
                }
            }
        }
    }
    let mut out: Vec<(f64, u32)> = results.into_iter().map(|C(d, v)| (d, v)).collect();
    out.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    (out, comps, expansions)
}

/// `SELECT-NEIGHBORS-HEURISTIC` of \[22\]: keep a candidate only if it is
/// closer to the base point than to every already selected neighbor
/// (diversifies directions, echoing the α-pruning idea).
fn select_heuristic<P, M: Metric<P>>(
    data: &Dataset<P, M>,
    p: usize,
    candidates: &[(f64, u32)],
    m: usize,
) -> Vec<u32> {
    let mut selected: Vec<u32> = Vec::with_capacity(m);
    for &(d, v) in candidates {
        if selected.len() >= m {
            break;
        }
        if v as usize == p {
            continue;
        }
        let diverse = selected
            .iter()
            .all(|&u| data.dist(u as usize, v as usize) > d);
        if diverse {
            selected.push(v);
        }
    }
    // Backfill with nearest skipped candidates if under-full.
    if selected.len() < m {
        for &(_, v) in candidates {
            if selected.len() >= m {
                break;
            }
            if v as usize != p && !selected.contains(&v) {
                selected.push(v);
            }
        }
    }
    selected
}

/// Re-prunes a vertex's adjacency down to `m_max`.
fn shrink<P: Sync, M: Metric<P> + Sync>(
    data: &Dataset<P, M>,
    layer: &mut [Vec<u32>],
    u: usize,
    m_max: usize,
    heuristic: bool,
) {
    let mut cands: Vec<(f64, u32)> = crate::label_dists(data, u, &layer[u]);
    cands.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    cands.dedup_by_key(|c| c.1);
    layer[u] = if heuristic {
        select_heuristic(data, u, &cands, m_max)
    } else {
        cands.into_iter().take(m_max).map(|(_, v)| v).collect()
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_metric::{Counting, Euclidean, FlatPoints, FlatRow};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    // Flat-backed on purpose: the baseline builds and searches are generic
    // over the point type, and these tests double as coverage that they run
    // on the contiguous layout the experiments use.
    fn random_dataset(n: usize, d: usize, seed: u64) -> Dataset<FlatRow, Euclidean> {
        let mut rng = StdRng::seed_from_u64(seed);
        FlatPoints::from_fn(n, d, |_, out| {
            out.extend((0..d).map(|_| rng.random_range(0.0..30.0)))
        })
        .into_dataset(Euclidean)
    }

    #[test]
    fn recall_at_1_is_high() {
        let ds = random_dataset(400, 2, 1);
        let h = Hnsw::build(&ds, HnswParams::default());
        let mut rng = StdRng::seed_from_u64(11);
        let mut hits = 0;
        let trials = 60;
        for _ in 0..trials {
            let q: FlatRow = vec![rng.random_range(0.0..30.0), rng.random_range(0.0..30.0)].into();
            let (exact, _) = ds.nearest_brute(&q);
            let (res, _) = h.search(&ds, &q, 48, 1);
            if res[0].0 as usize == exact {
                hits += 1;
            }
        }
        assert!(hits * 100 >= trials * 92, "recall too low: {hits}/{trials}");
    }

    #[test]
    fn knn_results_are_sorted_and_exactish() {
        let ds = random_dataset(300, 3, 2);
        let h = Hnsw::build(&ds, HnswParams::default());
        let q: FlatRow = vec![10.0, 10.0, 10.0].into();
        let (res, _) = h.search(&ds, &q, 64, 5);
        assert_eq!(res.len(), 5);
        assert!(res.windows(2).all(|w| w[0].1 <= w[1].1));
        let brute = ds.k_nearest_brute(&q, 5);
        // At ef = 64 on 300 points, expect at least 4/5 overlap.
        let overlap = res
            .iter()
            .filter(|(v, _)| brute.iter().any(|&(b, _)| b == *v as usize))
            .count();
        assert!(overlap >= 4, "only {overlap}/5 of true 5-NN found");
    }

    #[test]
    fn search_cost_is_sublinear() {
        let ds = random_dataset(2000, 2, 3);
        let counted = Dataset::new(ds.points().to_vec(), Counting::new(Euclidean));
        let h = Hnsw::build(&counted, HnswParams::default());
        counted.metric().reset();
        let q: FlatRow = vec![15.0, 15.0].into();
        let (_, reported) = h.search(&counted, &q, 32, 1);
        let actual = counted.metric().count();
        assert_eq!(reported, actual, "distance accounting must be exact");
        assert!(
            actual < 2000 / 2,
            "HNSW search used {actual} distances on n = 2000"
        );
    }

    #[test]
    fn layer_sizes_decay_geometrically() {
        let ds = random_dataset(1000, 2, 4);
        let h = Hnsw::build(&ds, HnswParams::default());
        assert!(h.layer_count() >= 2, "expected multiple layers");
        // Count points per level.
        let mut counts = vec![0usize; h.layer_count()];
        for p in 0..1000 {
            let top = h.level_of(p).min(h.layer_count() - 1);
            for c in counts.iter_mut().take(top + 1) {
                *c += 1;
            }
        }
        assert_eq!(counts[0], 1000);
        assert!(
            counts[1] < 1000 / 4,
            "layer 1 holds {} points, expected ~1/M",
            counts[1]
        );
    }

    #[test]
    fn ground_layer_degrees_are_capped() {
        let params = HnswParams::default();
        let ds = random_dataset(500, 2, 5);
        let h = Hnsw::build(&ds, params);
        let g = h.ground_layer();
        assert!(g.max_out_degree() <= 2 * params.m);
        assert_eq!(g.sink_count(), 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = random_dataset(200, 2, 6);
        let a = Hnsw::build(&ds, HnswParams::default());
        let b = Hnsw::build(&ds, HnswParams::default());
        assert_eq!(a.ground_layer(), b.ground_layer());
        assert_eq!(a.entry_point(), b.entry_point());
    }

    #[test]
    fn parallel_build_is_thread_count_invariant() {
        // Guards the label_dists wiring: at default parameters the shrink
        // candidate lists stay under the parallel threshold, so this pins
        // that introducing the pool-aware helper changed nothing — and that
        // any future threshold change keeps the build deterministic.
        let ds = random_dataset(250, 2, 8);
        let one = rayon::with_threads(1, || Hnsw::build(&ds, HnswParams::default()));
        for threads in [2, 4] {
            let many = rayon::with_threads(threads, || Hnsw::build(&ds, HnswParams::default()));
            assert_eq!(one.ground_layer(), many.ground_layer());
            assert_eq!(one.entry_point(), many.entry_point());
            assert_eq!(one.total_edges(), many.total_edges());
        }
    }

    #[test]
    fn simple_selection_variant_also_works() {
        let ds = random_dataset(300, 2, 7);
        let h = Hnsw::build(
            &ds,
            HnswParams {
                heuristic: false,
                ..HnswParams::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(12);
        let mut hits = 0;
        for _ in 0..30 {
            let q: FlatRow = vec![rng.random_range(0.0..30.0), rng.random_range(0.0..30.0)].into();
            let (exact, _) = ds.nearest_brute(&q);
            let (res, _) = h.search(&ds, &q, 48, 1);
            if res[0].0 as usize == exact {
                hits += 1;
            }
        }
        assert!(hits >= 26, "simple-selection recall too low: {hits}/30");
    }
}
