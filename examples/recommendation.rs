//! Recommendation-style scenario: clustered "embedding" vectors, queries
//! perturbed from real items — the workload the paper's introduction
//! motivates (recommendation systems, entity matching, multimedia search).
//!
//! Builds the paper's graphs and the practical baselines, then reports
//! recall@1 and distance computations per query for each.
//!
//! Run with: `cargo run --release --example recommendation`

use std::time::Instant;

use proximity_graphs::baselines::{nsw, vamana, Hnsw, HnswParams, NswParams, VamanaParams};
use proximity_graphs::core::{beam_search, greedy, GNet, Graph, MergedGraph, MergedParams};
use proximity_graphs::metric::{Counting, Dataset, Euclidean};
use proximity_graphs::workloads;

fn main() {
    let n = 4_000;
    let dim = 4;
    // 32 "genres" of items, Gaussian-clustered embeddings.
    let points = workloads::gaussian_clusters(n, dim, 32, 2.0, 100.0, 2024);
    let queries = workloads::perturbed_queries(&points, 200, 1.0, 99);
    let data = Dataset::new(points, Counting::new(Euclidean));

    println!("Recommendation workload: n = {n}, d = {dim}, 32 clusters, 200 near-item queries");
    println!();
    println!(
        "{:<18} {:>10} {:>10} {:>12} {:>10} {:>10}",
        "index", "build-s", "edges", "dists/query", "recall@1", "hops"
    );

    // Ground truth.
    let truth: Vec<usize> = queries.iter().map(|q| data.nearest_brute(q).0).collect();

    let report = |name: &str, graph: &Graph, build_s: f64, beam: bool| {
        let mut comps = 0u64;
        let mut hits = 0usize;
        let mut hops = 0usize;
        for (q, &t) in queries.iter().zip(truth.iter()) {
            data.metric().reset();
            let got = if beam {
                let (res, c) = beam_search(graph, &data, 0, q, 16, 1);
                comps += c;
                res[0].0 as usize
            } else {
                let out = greedy(graph, &data, 0, q);
                comps += out.dist_comps;
                hops += out.hops.len();
                out.result as usize
            };
            if got == t {
                hits += 1;
            }
        }
        println!(
            "{:<18} {:>10.2} {:>10} {:>12.0} {:>9.1}% {:>10.1}",
            name,
            build_s,
            graph.edge_count(),
            comps as f64 / queries.len() as f64,
            100.0 * hits as f64 / queries.len() as f64,
            hops as f64 / queries.len() as f64,
        );
    };

    // G_net (Theorem 1.1), greedy routing.
    let t0 = Instant::now();
    let gnet = GNet::build(&data, 1.0);
    let t_gnet = t0.elapsed().as_secs_f64();
    report("G_net (greedy)", &gnet.graph, t_gnet, false);

    // Merged graph (Theorem 1.3), greedy routing. θ widened for speed at
    // d = 4 (the ε/32 constant is worst-case; see DESIGN.md).
    let t0 = Instant::now();
    let merged = MergedGraph::build(&data, MergedParams::new(1.0).with_theta(0.9));
    let t_merged = t0.elapsed().as_secs_f64();
    report("merged (greedy)", &merged.graph, t_merged, false);

    // Vamana (practical DiskANN), beam routing.
    let t0 = Instant::now();
    let vg = vamana(&data, VamanaParams::default());
    let t_v = t0.elapsed().as_secs_f64();
    report("Vamana (beam16)", &vg, t_v, true);

    // NSW, beam routing.
    let t0 = Instant::now();
    let ng = nsw(&data, NswParams::default());
    let t_n = t0.elapsed().as_secs_f64();
    report("NSW (beam16)", &ng, t_n, true);

    // HNSW with its own layered search.
    let t0 = Instant::now();
    let h = Hnsw::build(&data, HnswParams::default());
    let t_h = t0.elapsed().as_secs_f64();
    let mut comps = 0u64;
    let mut hits = 0usize;
    for (q, &t) in queries.iter().zip(truth.iter()) {
        let (res, c) = h.search(&data, q, 16, 1);
        comps += c;
        if res[0].0 as usize == t {
            hits += 1;
        }
    }
    println!(
        "{:<18} {:>10.2} {:>10} {:>12.0} {:>9.1}% {:>10}",
        "HNSW (ef16)",
        t_h,
        h.total_edges(),
        comps as f64 / queries.len() as f64,
        100.0 * hits as f64 / queries.len() as f64,
        "-",
    );

    println!();
    println!("Brute force reference: {n} distance computations per query, 100% recall.");
    println!("Note: G_net/merged answers carry a worst-case (1+ε) guarantee from ANY start;");
    println!("the practical baselines do not (Indyk–Xu showed only DiskANN-slow has one).");
}
