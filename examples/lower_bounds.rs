//! The lower bounds of Theorem 1.2, executed.
//!
//! * Section 3 (Figure 1): the tree-metric instance forces any 2-PG to
//!   contain all `|P1| × |P2| = n·⌈h/2⌉` edges — delete any one and the
//!   verifier exhibits the stuck vertex the proof predicts.
//! * Section 4 (Figure 2): the block instance plus adversary Alice: any
//!   `(1 + 1/(2s))`-PG must contain every ordered intra-block pair.
//!
//! Both instances are then fed to the paper's own `G_net` — which, being a
//! genuine `(1+ε)`-PG, must (and does) pay the lower bound.
//!
//! Run with: `cargo run --release --example lower_bounds`

use proximity_graphs::core::{GNet, Graph};
use proximity_graphs::hardness::{BlockInstance, TreeInstance};

fn main() {
    println!("=== Theorem 1.2(1): Ω(n log Δ) edges, tree metric (Section 3) ===");
    println!();
    println!(
        "{:>6} {:>10} {:>6} | {:>14} {:>14} {:>12}",
        "n", "Δ", "h", "required", "G_net edges", "ratio"
    );
    for k in [2u32, 3, 4, 5] {
        // n = 2^k, 2Δ = n^2 (the smallest admissible Δ): h = 2k.
        let n = 1u64 << k;
        let delta = (n * n) / 2;
        let inst = TreeInstance::new(n, delta);
        let data = inst.dataset();
        let gnet = GNet::build(&data, 1.0);
        // G_net is a 2-PG, so it must contain every required edge.
        assert_eq!(
            inst.find_missing_required_edge(&gnet.graph),
            None,
            "a valid 2-PG must pay the lower bound"
        );
        println!(
            "{:>6} {:>10} {:>6} | {:>14} {:>14} {:>12.2}",
            n,
            delta,
            inst.h,
            inst.required_edge_count(),
            gnet.graph.edge_count(),
            gnet.graph.edge_count() as f64 / inst.required_edge_count() as f64
        );
    }
    println!();

    // Failure injection: remove one required edge from the complete graph.
    let inst = TreeInstance::new(8, 32);
    let complete = Graph::complete(inst.len());
    let (v1, v2) = inst.required_edges().next().unwrap();
    let broken = complete.without_edge(v1, v2);
    let viol = inst.adversary_violation(&broken, v1, v2).unwrap();
    println!(
        "Failure injection: removed edge ({v1}, {v2}) from the complete graph; \
         greedy is now stuck at vertex {} (distance {} vs NN distance {}).",
        viol.point, viol.dist, viol.nn_dist
    );
    println!();

    println!("=== Theorem 1.2(2): Ω(s^d · n) edges, block instance + adversary (Section 4) ===");
    println!();
    println!(
        "{:>3} {:>3} {:>3} {:>7} {:>8} | {:>12} {:>12} {:>8}",
        "s", "d", "t", "n", "ε", "required", "G_net edges", "ratio"
    );
    for (s, d, t) in [
        (2u32, 1u32, 4u32),
        (2, 2, 4),
        (3, 2, 3),
        (2, 3, 2),
        (4, 2, 2),
    ] {
        let inst = BlockInstance::new(s, d, t);
        let data = inst.data_dataset();
        let gnet = GNet::build(&data, inst.epsilon());
        assert_eq!(
            inst.find_missing_required_edge(&gnet.graph),
            None,
            "a valid (1+1/(2s))-PG must contain every intra-block pair"
        );
        println!(
            "{:>3} {:>3} {:>3} {:>7} {:>8.3} | {:>12} {:>12} {:>8.2}",
            s,
            d,
            t,
            inst.n(),
            inst.epsilon(),
            inst.required_edge_count(),
            gnet.graph.edge_count(),
            gnet.graph.edge_count() as f64 / inst.required_edge_count() as f64
        );
    }
    println!();

    // Alice's move, executed.
    let inst = BlockInstance::new(3, 2, 2);
    let complete = Graph::complete(inst.n());
    let (p1, p2) = inst.required_edges().next().unwrap();
    let broken = complete.without_edge(p1, p2);
    let viol = inst.adversary_violation(&broken, p1, p2).unwrap();
    println!(
        "Adversary demo: with edge ({p1}, {p2}) missing, Alice sets p* = {p2}; \
         under D_p* the point {} is stuck at distance {} while the NN sits at {}.",
        viol.point, viol.dist, viol.nn_dist
    );
    println!();
    println!("Interpretation: the (1/ε)^λ·n and n log Δ terms in Theorem 1.1's size");
    println!("bound are not artifacts — any proximity graph, regardless of query");
    println!("time, must pay them (up to subpolynomial factors) in general metrics.");
}
