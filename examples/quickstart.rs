//! Quickstart: build the paper's `(1+ε)`-proximity graph on random vectors,
//! route queries greedily, and compare against brute force.
//!
//! Run with: `cargo run --release --example quickstart`

use proximity_graphs::core::{greedy, GNet};
use proximity_graphs::metric::{Counting, Dataset, Euclidean};
use proximity_graphs::workloads;

fn main() {
    // --- 1. Data ---------------------------------------------------------
    // 2,000 random points in [0, 100]^2, with every distance call counted
    // (the paper measures query time in distance computations).
    let n = 2_000;
    let points = workloads::uniform_cube(n, 2, 100.0, 42);
    let data = Dataset::new(points, Counting::new(Euclidean));

    // --- 2. Index --------------------------------------------------------
    // ε = 1.0 gives a 2-approximate proximity graph (Theorem 1.1):
    // O((1/ε)^λ · n log Δ) edges, near-linear construction.
    let epsilon = 1.0;
    let pg = GNet::build(&data, epsilon);
    let build_dists = data.metric().take();

    println!("G_net built: n = {n}, ε = {epsilon}");
    println!("  net levels (≈ log Δ):   {}", pg.hierarchy.num_levels());
    println!("  edges:                  {}", pg.graph.edge_count());
    println!("  avg out-degree:         {:.1}", pg.graph.avg_out_degree());
    println!("  max out-degree:         {}", pg.graph.max_out_degree());
    println!(
        "  build distance calls:   {build_dists} ({:.1} per point)",
        build_dists as f64 / n as f64
    );
    println!();

    // --- 3. Queries ------------------------------------------------------
    let queries = workloads::uniform_queries(100, 2, -10.0, 110.0, 7);
    let mut total_comps = 0u64;
    let mut total_hops = 0usize;
    let mut worst_ratio: f64 = 1.0;
    for (i, q) in queries.iter().enumerate() {
        // The start vertex is arbitrary — the (1+ε)-PG guarantee holds from
        // anywhere. Stress that by starting at a rotating vertex.
        let start = ((i * 37) % n) as u32;
        data.metric().reset();
        let out = greedy(&pg.graph, &data, start, q);
        total_comps += out.dist_comps;
        total_hops += out.hops.len();

        let (_, exact) = data.nearest_brute(q);
        let ratio = if exact == 0.0 {
            1.0
        } else {
            out.result_dist / exact
        };
        worst_ratio = worst_ratio.max(ratio);
        assert!(
            ratio <= 1.0 + epsilon + 1e-9,
            "(1+ε) guarantee violated: ratio {ratio}"
        );
    }
    println!("100 greedy queries from arbitrary starts:");
    println!(
        "  avg distance calls:     {:.1}  (brute force: {n})",
        total_comps as f64 / 100.0
    );
    println!("  avg hops:               {:.1}", total_hops as f64 / 100.0);
    println!(
        "  worst approx ratio:     {worst_ratio:.4}  (guarantee: {})",
        1.0 + epsilon
    );
    println!();
    println!("Every query returned a (1+ε)-approximate nearest neighbor.");
}
