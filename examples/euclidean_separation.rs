//! The Euclidean separation of Theorem 1.3, demonstrated.
//!
//! Statement (1) of Theorem 1.2 proves that in general metric spaces any
//! 2-PG needs `Ω(n log Δ)` edges. Theorem 1.3 shows Euclidean geometry
//! evades this: the merged graph keeps `O((1/ε)^λ · n)` edges — **flat in
//! Δ** — while still answering queries in polylog time.
//!
//! This example sweeps the aspect ratio `Δ` at fixed `n` on a geometric
//! chain and prints edges-per-point of `G_net` (grows like `log Δ`) versus
//! the merged graph and the θ-graph (flat), plus greedy query cost.
//!
//! Run with: `cargo run --release --example euclidean_separation`

use proximity_graphs::core::{greedy, GNet, MergedGraph, MergedParams};
use proximity_graphs::metric::{Counting, Dataset, Euclidean};
use proximity_graphs::workloads;

fn main() {
    let per_cluster = 50;
    println!("Euclidean separation (Theorem 1.3): edges per point as Δ grows, n fixed");
    println!();
    println!(
        "{:>9} {:>8} {:>8} | {:>10} {:>10} {:>10} | {:>12} {:>12}",
        "clusters", "n", "logΔ", "G_net e/p", "merged e/p", "theta e/p", "G_net d/q", "merged d/q"
    );

    for clusters in [2usize, 4, 8, 16, 32] {
        let n = clusters * per_cluster;
        let points = workloads::geometric_chain(clusters, per_cluster, 4.0, 2, 7);
        let data = Dataset::new(points, Counting::new(Euclidean));

        let gnet = GNet::build(&data, 1.0);
        let merged = MergedGraph::build(&data, MergedParams::new(1.0));
        let log_delta = gnet.hierarchy.log_aspect();

        // Greedy query cost (distance comps) averaged over queries near the
        // chain, worst-case starts (far end).
        let queries = workloads::perturbed_queries(data.points(), 40, 0.3, 11);
        let mut gnet_comps = 0u64;
        let mut merged_comps = 0u64;
        for q in &queries {
            let far_start = (n - 1) as u32;
            gnet_comps += greedy(&gnet.graph, &data, far_start, q).dist_comps;
            merged_comps += greedy(&merged.graph, &data, far_start, q).dist_comps;
        }

        println!(
            "{:>9} {:>8} {:>8} | {:>10.1} {:>10.1} {:>10.1} | {:>12.0} {:>12.0}",
            clusters,
            n,
            log_delta,
            gnet.graph.edge_count() as f64 / n as f64,
            merged.graph.edge_count() as f64 / n as f64,
            merged.theta_edges as f64 / n as f64,
            gnet_comps as f64 / queries.len() as f64,
            merged_comps as f64 / queries.len() as f64,
        );
    }

    println!();
    println!("Expected shape: the G_net column grows ~linearly with log Δ (its lower");
    println!("bound is real — Theorem 1.2(1)), while the merged and θ columns stay flat:");
    println!("that gap is the Euclidean separation.");
}
