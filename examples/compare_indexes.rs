//! Side-by-side comparison of every index in the workspace on the standard
//! workload suite: construction distance-cost, edges, greedy/beam query
//! cost, and recall@1.
//!
//! Run with: `cargo run --release --example compare_indexes`

use std::time::Instant;

use proximity_graphs::baselines::{
    nsw, slow_preprocessing, vamana, Hnsw, HnswParams, NswParams, VamanaParams,
};
use proximity_graphs::core::{beam_search, greedy, GNet, Graph, MergedGraph, MergedParams};
use proximity_graphs::metric::{Counting, Dataset, Euclidean};
use proximity_graphs::workloads;

struct Row {
    name: &'static str,
    build_dists: u64,
    build_secs: f64,
    edges: usize,
    query_dists: f64,
    recall: f64,
}

fn main() {
    let n = 1_500;
    for (wname, points) in workloads::standard_suite(n, 1234) {
        let dim = points[0].len();
        let data = Dataset::new(points, Counting::new(Euclidean));
        let queries = workloads::perturbed_queries(data.points(), 100, 0.5, 77);
        let truth: Vec<usize> = queries.iter().map(|q| data.nearest_brute(q).0).collect();
        data.metric().reset();

        let mut rows: Vec<Row> = Vec::new();

        let mut eval_greedy = |name: &'static str, g: &Graph, build_dists: u64, build_secs: f64| {
            let mut comps = 0u64;
            let mut hits = 0usize;
            for (q, &t) in queries.iter().zip(truth.iter()) {
                let out = greedy(g, &data, 0, q);
                comps += out.dist_comps;
                if out.result as usize == t {
                    hits += 1;
                }
            }
            rows.push(Row {
                name,
                build_dists,
                build_secs,
                edges: g.edge_count(),
                query_dists: comps as f64 / queries.len() as f64,
                recall: hits as f64 / queries.len() as f64,
            });
        };

        // --- the paper's graphs ---
        let t = Instant::now();
        let gnet = GNet::build_fast(&data, 1.0);
        let (b, s) = (data.metric().take(), t.elapsed().as_secs_f64());
        eval_greedy("G_net (fast)", &gnet.graph, b, s);

        let t = Instant::now();
        let gnet_naive = GNet::build_naive(&data, 1.0);
        let (b, s) = (data.metric().take(), t.elapsed().as_secs_f64());
        eval_greedy("G_net (naive)", &gnet_naive.graph, b, s);

        let theta = if dim <= 2 { 0.25 } else { 0.7 };
        let t = Instant::now();
        let merged = MergedGraph::build(&data, MergedParams::new(1.0).with_theta(theta));
        let (b, s) = (data.metric().take(), t.elapsed().as_secs_f64());
        eval_greedy("merged (Thm1.3)", &merged.graph, b, s);

        // --- baselines ---
        let t = Instant::now();
        let slow = slow_preprocessing(&data, 3.0); // ratio 2 = (α+1)/(α-1)
        let (b, s) = (data.metric().take(), t.elapsed().as_secs_f64());
        eval_greedy("DiskANN-slow", &slow, b, s);

        let t = Instant::now();
        let vg = vamana(&data, VamanaParams::default());
        let (bv, sv) = (data.metric().take(), t.elapsed().as_secs_f64());
        // Beam search for the practical indexes (their native routine).
        let mut comps = 0u64;
        let mut hits = 0usize;
        for (q, &t) in queries.iter().zip(truth.iter()) {
            let (res, c) = beam_search(&vg, &data, 0, q, 12, 1);
            comps += c;
            if res[0].0 as usize == t {
                hits += 1;
            }
        }
        rows.push(Row {
            name: "Vamana (beam12)",
            build_dists: bv,
            build_secs: sv,
            edges: vg.edge_count(),
            query_dists: comps as f64 / queries.len() as f64,
            recall: hits as f64 / queries.len() as f64,
        });

        let t = Instant::now();
        let ng = nsw(&data, NswParams::default());
        let (bn, sn) = (data.metric().take(), t.elapsed().as_secs_f64());
        let mut comps = 0u64;
        let mut hits = 0usize;
        for (q, &tr) in queries.iter().zip(truth.iter()) {
            let (res, c) = beam_search(&ng, &data, 0, q, 12, 1);
            comps += c;
            if res[0].0 as usize == tr {
                hits += 1;
            }
        }
        rows.push(Row {
            name: "NSW (beam12)",
            build_dists: bn,
            build_secs: sn,
            edges: ng.edge_count(),
            query_dists: comps as f64 / queries.len() as f64,
            recall: hits as f64 / queries.len() as f64,
        });

        let t = Instant::now();
        let h = Hnsw::build(&data, HnswParams::default());
        let (bh, sh) = (data.metric().take(), t.elapsed().as_secs_f64());
        let mut comps = 0u64;
        let mut hits = 0usize;
        for (q, &tr) in queries.iter().zip(truth.iter()) {
            let (res, c) = h.search(&data, q, 12, 1);
            comps += c;
            if res[0].0 as usize == tr {
                hits += 1;
            }
        }
        rows.push(Row {
            name: "HNSW (ef12)",
            build_dists: bh,
            build_secs: sh,
            edges: h.total_edges(),
            query_dists: comps as f64 / queries.len() as f64,
            recall: hits as f64 / queries.len() as f64,
        });

        println!("=== workload: {wname} (n = {n}, d = {dim}) ===");
        println!(
            "{:<16} {:>12} {:>9} {:>9} {:>12} {:>9}",
            "index", "build-dists", "build-s", "edges", "dists/query", "recall@1"
        );
        for r in &rows {
            println!(
                "{:<16} {:>12} {:>9.2} {:>9} {:>12.0} {:>8.1}%",
                r.name,
                r.build_dists,
                r.build_secs,
                r.edges,
                r.query_dists,
                100.0 * r.recall
            );
        }
        println!(
            "{:<16} {:>12} {:>9} {:>9} {:>12} {:>9}",
            "brute force", 0, "-", "-", n, "100.0%"
        );
        println!();
    }

    println!("Reading guide: G_net fast vs naive shows the Section 2.4 speedup at");
    println!("identical output; only the paper's graphs guarantee worst-case (1+ε)");
    println!("answers from any start — baselines buy speed with recall risk.");
}
