//! Streaming scenario: points arrive and expire continuously (a sliding
//! window over an event stream) while queries keep their `(1+ε)` guarantee —
//! the dynamic extension of the paper's static construction
//! (`pg_core::dynamic`, logarithmic rebuilding on top of Theorem 1.1's
//! near-linear builder).
//!
//! Run with: `cargo run --release --example streaming`

use proximity_graphs::core::DynamicGNet;
use proximity_graphs::metric::{Counting, Euclidean};
use proximity_graphs::workloads;

fn main() {
    let epsilon = 1.0;
    let mut index = DynamicGNet::new(Counting::new(Euclidean), epsilon);

    // A sliding window of 2,000 points over a 10,000-event stream.
    let window = 2_000usize;
    let stream = workloads::gaussian_clusters(10_000, 2, 24, 2.0, 120.0, 77);
    let queries = workloads::uniform_queries(1, 2, 0.0, 120.0, 78);

    let mut ids = std::collections::VecDeque::new();
    let mut checked = 0usize;
    let mut worst_ratio: f64 = 1.0;
    let mut query_comps = 0u64;
    let mut queries_run = 0u64;

    for (step, p) in stream.iter().enumerate() {
        ids.push_back(index.insert(p.clone()));
        if ids.len() > window {
            index.remove(ids.pop_front().unwrap());
        }

        // Periodically query and audit the guarantee against a full scan.
        if step % 500 == 499 {
            let q = &queries[0];
            let before = index.metric().count();
            let ans = index.query(q).expect("window is non-empty");
            query_comps += index.metric().count() - before;
            queries_run += 1;

            // Exact answer over the live window (audit only).
            let exact = ids
                .iter()
                .map(|&id| {
                    use proximity_graphs::metric::Metric;
                    Euclidean.dist(&stream[id as usize], q)
                })
                .fold(f64::INFINITY, f64::min);
            let ratio = if exact == 0.0 { 1.0 } else { ans.dist / exact };
            worst_ratio = worst_ratio.max(ratio);
            checked += 1;
            assert!(
                ratio <= 1.0 + epsilon + 1e-9,
                "guarantee violated at step {step}: ratio {ratio}"
            );
        }
    }

    let stats = index.stats();
    println!("Sliding-window stream processed: 10,000 events, window {window}");
    println!("  live points:            {}", stats.live);
    println!("  full rebuilds:          {}", stats.rebuilds);
    println!("  buffered (unindexed):   {}", stats.buffered);
    println!("  snapshot tombstones:    {}", stats.tombstones);
    println!("  total distance calls:   {}", index.metric().count());
    println!();
    println!("{checked} audited queries:");
    println!(
        "  avg distance calls:     {:.0}  (window scan would be {window})",
        query_comps as f64 / queries_run as f64
    );
    println!(
        "  worst approx ratio:     {worst_ratio:.4}  (guarantee: {})",
        1.0 + epsilon
    );
    println!();
    println!("The (1+ε) guarantee held at every audit point while the index");
    println!(
        "absorbed 10,000 inserts and {} deletes.",
        10_000 - stats.live
    );
}
