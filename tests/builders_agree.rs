//! Integration: the three `G_net` builders (naive scan, relatives cascade,
//! Section 2.4 covertree procedure) produce **identical** graphs on the same
//! hierarchy — including on non-Euclidean metrics (the tree metric of
//! Section 3 and the integer `L_∞` of Section 4), which exercises the full
//! generic path.

use proximity_graphs::core::GNet;
use proximity_graphs::hardness::{BlockInstance, TreeInstance};
use proximity_graphs::metric::{Chebyshev, Dataset, Euclidean, Manhattan};
use proximity_graphs::nets::NetHierarchy;
use proximity_graphs::workloads;

fn assert_all_builders_agree<
    P: Clone + Sync,
    M: proximity_graphs::metric::Metric<P> + Clone + Sync,
>(
    data: &Dataset<P, M>,
    eps: f64,
    label: &str,
) {
    let h = NetHierarchy::build(data);
    let fast = GNet::build_fast_on(data, eps, h.clone());
    let naive = GNet::build_naive_on(data, eps, h.clone());
    let ct = GNet::build_covertree_on(data, eps, h);
    assert_eq!(fast.graph, naive.graph, "{label}: fast != naive");
    assert_eq!(ct.graph, naive.graph, "{label}: covertree != naive");
}

#[test]
fn builders_agree_on_euclidean_workloads() {
    for (name, points) in workloads::standard_suite(100, 3) {
        let data = Dataset::new(points, Euclidean);
        assert_all_builders_agree(&data, 1.0, name);
    }
}

#[test]
fn builders_agree_for_small_epsilon() {
    let points = workloads::uniform_cube(80, 2, 60.0, 4);
    let data = Dataset::new(points, Euclidean);
    assert_all_builders_agree(&data, 0.25, "uniform eps=0.25");
}

#[test]
fn builders_agree_on_the_tree_metric() {
    let inst = TreeInstance::new(8, 128);
    let data = inst.dataset();
    assert_all_builders_agree(&data, 1.0, "tree metric");
}

#[test]
fn builders_agree_on_the_block_instance() {
    let inst = BlockInstance::new(3, 2, 3);
    let data = inst.data_dataset();
    assert_all_builders_agree(&data, inst.epsilon(), "block L_inf");
}

#[test]
fn builders_agree_under_other_lp_norms() {
    let points = workloads::uniform_cube(70, 3, 40.0, 5);
    let data = Dataset::new(points.clone(), Chebyshev);
    assert_all_builders_agree(&data, 1.0, "L_inf");
    let data = Dataset::new(points, Manhattan);
    assert_all_builders_agree(&data, 1.0, "L_1");
}

#[test]
fn hierarchy_reuse_is_equivalent_to_fresh_build() {
    let points = workloads::uniform_cube(90, 2, 50.0, 6);
    let data = Dataset::new(points, Euclidean);
    let fresh = GNet::build_fast(&data, 1.0);
    let h = NetHierarchy::build(&data);
    let reused = GNet::build_fast_on(&data, 1.0, h);
    assert_eq!(fresh.graph, reused.graph);
}
