//! BFS/degree vertex relabeling is a **pure relabeling**: for every graph
//! family in the workspace — `GNet`, θ-graphs, HNSW's ground layer, Vamana,
//! NSW, and the complete graph — searching the reordered index must be
//! bit-identical to searching the original once ids are mapped back:
//! same greedy walk (result, full hop sequence, `dist_comps`), same
//! budgeted walk, same beam results and accounting. A reordered engine must
//! also survive the snapshot round trip (plain and quantized) unchanged.

use proximity_graphs::baselines::{nsw, vamana, Hnsw, HnswParams, NswParams, VamanaParams};
use proximity_graphs::core::{
    beam_search_detailed, bfs_degree_order, greedy, query, GNet, Graph, QueryEngine, ThetaGraph,
};
use proximity_graphs::metric::{Dataset, Euclidean, FlatRow, QuantKind};
use proximity_graphs::workloads;

/// The six graph families the satellite pins, as `(name, builder)` pairs.
fn families(data: &Dataset<Vec<f64>, Euclidean>) -> Vec<(&'static str, Graph)> {
    vec![
        ("gnet", GNet::build_fast(data, 1.0).graph),
        (
            "theta",
            ThetaGraph::build(data, std::f64::consts::FRAC_PI_4).graph,
        ),
        (
            "hnsw-ground",
            Hnsw::build(data, HnswParams::default()).ground_layer(),
        ),
        ("vamana", vamana(data, VamanaParams::default())),
        ("nsw", nsw(data, NswParams::default())),
        ("brute", Graph::complete(data.len())),
    ]
}

/// Start vertices spread deterministically over `0..n`.
fn spread_starts(count: usize, n: usize) -> Vec<u32> {
    (0..count).map(|i| ((i * 2654435761) % n) as u32).collect()
}

#[test]
fn relabeling_preserves_every_search_family_bit_for_bit() {
    let n = 160;
    let d = 2;
    let rows = workloads::uniform_cube(n, d, 90.0, 0x5EED);
    let queries = workloads::uniform_queries_flat(12, d, -5.0, 95.0, 0xFACE);
    let queries: Vec<Vec<f64>> = (0..12).map(|i| queries.row(i).to_vec()).collect();
    let data = Dataset::new(rows.clone(), Euclidean);

    for (name, graph) in families(&data) {
        let map = bfs_degree_order(&graph, 0);
        let relabeled = map.relabel_graph(&graph);
        let permuted: Vec<Vec<f64>> = (0..n)
            .map(|new| rows[map.to_old(new as u32) as usize].clone())
            .collect();
        let rdata = Dataset::new(permuted, Euclidean);

        for (qi, q) in queries.iter().enumerate() {
            for &start in &spread_starts(5, n) {
                let rstart = map.to_new(start);

                // Greedy: identical walk under the id map, hop by hop.
                let a = greedy(&graph, &data, start, q);
                let b = greedy(&relabeled, &rdata, rstart, q);
                let b_hops: Vec<u32> = b.hops.iter().map(|&v| map.to_old(v)).collect();
                assert_eq!(
                    (
                        map.to_old(b.result),
                        b.result_dist,
                        b_hops,
                        b.dist_comps,
                        b.self_terminated
                    ),
                    (
                        a.result,
                        a.result_dist,
                        a.hops.clone(),
                        a.dist_comps,
                        a.self_terminated
                    ),
                    "{name}: greedy diverged under relabeling (query {qi}, start {start})"
                );

                // Budgeted walk: same contract at tight and loose budgets.
                for budget in [3u64, 25] {
                    let a = query(&graph, &data, start, q, budget);
                    let b = query(&relabeled, &rdata, rstart, q, budget);
                    let b_hops: Vec<u32> = b.hops.iter().map(|&v| map.to_old(v)).collect();
                    assert_eq!(
                        (map.to_old(b.result), b.result_dist, b_hops, b.dist_comps),
                        (a.result, a.result_dist, a.hops.clone(), a.dist_comps),
                        "{name}: budget-{budget} walk diverged (query {qi}, start {start})"
                    );
                }

                // Beam: identical results and accounting at narrow and full width.
                for ef in [4usize, n] {
                    let a = beam_search_detailed(&graph, &data, start, q, ef, 5);
                    let b = beam_search_detailed(&relabeled, &rdata, rstart, q, ef, 5);
                    let b_results: Vec<(u32, f64)> =
                        b.results.iter().map(|&(v, s)| (map.to_old(v), s)).collect();
                    assert_eq!(
                        (b_results, b.dist_comps, b.expansions),
                        (a.results.clone(), a.dist_comps, a.expansions),
                        "{name}: beam ef={ef} diverged (query {qi}, start {start})"
                    );
                }
            }
        }
    }
}

#[test]
fn reordering_is_a_permutation_on_every_family() {
    let data = Dataset::new(workloads::uniform_cube(120, 3, 50.0, 0xA11), Euclidean);
    for (name, graph) in families(&data) {
        let map = bfs_degree_order(&graph, 7);
        let mut seen = vec![false; data.len()];
        for old in 0..data.len() as u32 {
            let new = map.to_new(old);
            assert_eq!(map.to_old(new), old, "{name}: to_old(to_new) != id");
            assert!(!seen[new as usize], "{name}: new id {new} assigned twice");
            seen[new as usize] = true;
        }
        // Edge multiset is preserved, just relabeled.
        let relabeled = map.relabel_graph(&graph);
        let count = |g: &Graph| {
            (0..data.len())
                .map(|v| g.neighbors(v as u32).len())
                .sum::<usize>()
        };
        assert_eq!(
            count(&relabeled),
            count(&graph),
            "{name}: edge count changed"
        );
    }
}

#[test]
fn a_reordered_engine_survives_the_snapshot_round_trip() {
    let n = 140;
    let d = 2;
    let side = 70.0;
    let data = workloads::uniform_cube_flat(n, d, side, 0xD0E).into_dataset(Euclidean);
    let g = GNet::build_fast(&data, 1.0);
    let engine = QueryEngine::new(g.graph, data);
    let (reordered, map) = engine.reorder_bfs(0);

    let queries = workloads::uniform_queries_flat(10, d, -5.0, side + 5.0, 0xB0B).into_rows();
    let starts: Vec<u32> = spread_starts(10, n)
        .iter()
        .map(|&s| map.to_new(s))
        .collect();
    let before = reordered.batch_beam_detailed(&starts, &queries, 24, 5);

    // Plain snapshot (format v1).
    let path = std::env::temp_dir().join(format!("pg_reorder_rt_{}.pgix", std::process::id()));
    reordered.save(&path).unwrap();
    let loaded = QueryEngine::<FlatRow, Euclidean>::load(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    assert_eq!(loaded.graph(), reordered.graph());
    let after = loaded.batch_beam_detailed(&starts, &queries, 24, 5);
    assert_eq!(
        after.outcomes, before.outcomes,
        "plain round trip changed answers"
    );

    // Quantized snapshot (format v2), both compact representations.
    for kind in [QuantKind::F32, QuantKind::Sq8] {
        let compact = reordered.quantize(kind).unwrap();
        let qbefore = reordered.batch_beam_quantized_detailed(&compact, &starts, &queries, 24, 5);
        let path = std::env::temp_dir().join(format!(
            "pg_reorder_rt_{}_{}.pgix",
            std::process::id(),
            kind.name()
        ));
        reordered.save_quantized(&path, 0, None, &compact).unwrap();
        let (qloaded, back, meta) =
            QueryEngine::<FlatRow, Euclidean>::load_quantized(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(back, compact, "{}: compact store round trip", kind.name());
        assert_eq!(meta.n, n as u64);
        assert_eq!(qloaded.graph(), reordered.graph());
        let qafter = qloaded.batch_beam_quantized_detailed(&back, &starts, &queries, 24, 5);
        assert_eq!(
            qafter.outcomes,
            qbefore.outcomes,
            "{}: quantized round trip changed answers",
            kind.name()
        );
    }
}
