//! Integration: the full pipeline on a non-`L_p` metric — angular distance
//! on the unit sphere (cosine-similarity retrieval). `(S^{d-1}, angular)` is
//! a doubling metric, so Theorem 1.1 applies verbatim; this exercises the
//! generic (coordinate-free) code paths end to end.

use proximity_graphs::core::{check_navigable, check_pg_exhaustive, greedy, GNet, Starts};
use proximity_graphs::covertree::CoverTree;
use proximity_graphs::metric::{normalize, Angular, Counting, Dataset, Metric};
use proximity_graphs::nets::NetHierarchy;
use proximity_graphs::workloads;

fn sphere_dataset(n: usize, d: usize, seed: u64) -> Dataset<Vec<f64>, Angular> {
    Dataset::new(workloads::unit_sphere(n, d, seed), Angular)
}

#[test]
fn net_hierarchy_is_valid_on_the_sphere() {
    let data = sphere_dataset(120, 3, 1);
    let h = NetHierarchy::build(&data);
    h.validate(&data).unwrap();
}

#[test]
fn gnet_is_a_pg_under_angular_distance() {
    let data = sphere_dataset(90, 3, 2);
    let g = GNet::build(&data, 1.0);
    let queries = workloads::unit_sphere(25, 3, 3);
    check_navigable(&g.graph, &data, &queries, 1.0).unwrap();
    check_pg_exhaustive(&g.graph, &data, &queries, 1.0, Starts::All).unwrap();
}

#[test]
fn all_three_builders_agree_on_the_sphere() {
    let data = sphere_dataset(80, 3, 4);
    let h = NetHierarchy::build(&data);
    let fast = GNet::build_fast_on(&data, 1.0, h.clone());
    let naive = GNet::build_naive_on(&data, 1.0, h.clone());
    let ct = GNet::build_covertree_on(&data, 1.0, h);
    assert_eq!(fast.graph, naive.graph);
    assert_eq!(ct.graph, naive.graph);
}

#[test]
fn covertree_nearest_matches_brute_on_the_sphere() {
    let data = sphere_dataset(150, 4, 5);
    let tree = CoverTree::build_all(&data);
    for q in workloads::unit_sphere(20, 4, 6) {
        let (_, exact) = data.nearest_brute(&q);
        let (_, got) = tree.nearest(&q).unwrap();
        assert!((got - exact).abs() < 1e-9);
    }
}

#[test]
fn greedy_angular_search_is_sublinear_and_correct() {
    let n = 1500;
    let data = Dataset::new(workloads::unit_sphere(n, 3, 7), Counting::new(Angular));
    let g = GNet::build(&data, 1.0);
    data.metric().reset();
    let mut total = 0u64;
    for (i, raw) in workloads::uniform_queries(25, 3, -1.0, 1.0, 8)
        .iter()
        .enumerate()
    {
        if raw.iter().all(|&x| x == 0.0) {
            continue;
        }
        let q = normalize(raw);
        let out = greedy(&g.graph, &data, ((i * 97) % n) as u32, &q);
        total += out.dist_comps;
        let (_, exact) = data.nearest_brute(&q);
        assert!(out.result_dist <= 2.0 * exact + 1e-9);
    }
    assert!(
        total < 25 * n as u64 / 2,
        "angular greedy should be well below brute force ({total})"
    );
}

#[test]
fn angular_and_euclidean_nn_agree_on_unit_vectors() {
    // On the unit sphere, angular and chordal (L2) distances are monotone in
    // each other, so the exact NN coincides.
    let pts = workloads::unit_sphere(200, 3, 9);
    let ang = Dataset::new(pts.clone(), Angular);
    let euc = Dataset::new(pts, proximity_graphs::metric::Euclidean);
    for q in workloads::unit_sphere(20, 3, 10) {
        let (a, _) = ang.nearest_brute(&q);
        let (e, _) = euc.nearest_brute(&q);
        assert_eq!(a, e);
    }
    let _ = Angular.dist(&vec![1.0, 0.0, 0.0], &vec![0.0, 1.0, 0.0]);
}
