//! Property-based tests (proptest) over randomly generated inputs:
//! metric axioms, net invariants, greedy monotonicity, PG correctness,
//! cone covering, and the Appendix E facts used by Lemma 5.1.

use proptest::prelude::*;
use proximity_graphs::core::{check_navigable, greedy, ConeSet, GNet, ThetaGraph};
use proximity_graphs::hardness::{AdversarialMetric, BPoint, BlockInstance};
use proximity_graphs::metric::metric::axioms;
use proximity_graphs::metric::{Dataset, Euclidean, Scaled};
use proximity_graphs::nets::NetHierarchy;

/// Strategy: a set of 5..40 distinct-ish random 2-d points.
fn small_pointset() -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(
        (0i32..4000, 0i32..4000).prop_map(|(x, y)| vec![x as f64 * 0.05, y as f64 * 0.05]),
        5..40,
    )
    .prop_map(|mut pts| {
        pts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        pts.dedup();
        pts
    })
    .prop_filter("need >= 5 distinct points", |pts| pts.len() >= 5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn scaled_euclidean_satisfies_metric_axioms(
        pts in small_pointset(),
        factor in 0.01f64..100.0,
    ) {
        let m = Scaled::new(Euclidean, factor);
        prop_assert!(axioms::check_all(&m, &pts).is_ok());
    }

    #[test]
    fn net_hierarchy_is_valid_on_random_points(pts in small_pointset()) {
        let data = Dataset::new(pts, Euclidean);
        let h = NetHierarchy::build(&data);
        prop_assert!(h.validate(&data).is_ok());
    }

    #[test]
    fn greedy_distances_strictly_descend(
        pts in small_pointset(),
        qx in 0.0f64..200.0,
        qy in 0.0f64..200.0,
        start_sel in 0usize..1000,
    ) {
        let data = Dataset::new(pts, Euclidean);
        let g = GNet::build(&data, 1.0);
        let q = vec![qx, qy];
        let start = (start_sel % data.len()) as u32;
        let out = greedy(&g.graph, &data, start, &q);
        let dists: Vec<f64> = out.hops.iter()
            .map(|&h| data.dist_to(h as usize, &q)).collect();
        prop_assert!(dists.windows(2).all(|w| w[1] < w[0]),
            "hop distances not strictly descending: {dists:?}");
    }

    #[test]
    fn gnet_returns_a_2ann_for_any_query_and_start(
        pts in small_pointset(),
        qx in -50.0f64..250.0,
        qy in -50.0f64..250.0,
        start_sel in 0usize..1000,
    ) {
        let data = Dataset::new(pts, Euclidean);
        let g = GNet::build(&data, 1.0);
        let q = vec![qx, qy];
        let start = (start_sel % data.len()) as u32;
        let out = greedy(&g.graph, &data, start, &q);
        let (_, exact) = data.nearest_brute(&q);
        prop_assert!(out.result_dist <= 2.0 * exact + 1e-9,
            "ratio {} exceeds 2", out.result_dist / exact.max(1e-12));
    }

    #[test]
    fn theta_graph_out_degree_never_exceeds_cone_count(
        pts in small_pointset(),
        theta_inv in 3u32..20,
    ) {
        let data = Dataset::new(pts, Euclidean);
        let t = ThetaGraph::build(&data, 1.0 / theta_inv as f64);
        prop_assert!(t.graph.max_out_degree() <= t.cone_count);
        prop_assert_eq!(t.graph.sink_count(), 0, "every point has a non-empty cone");
    }

    #[test]
    fn theta_graph_matches_its_naive_reference(pts in small_pointset()) {
        let data = Dataset::new(pts, Euclidean);
        let fast = ThetaGraph::build(&data, 0.3);
        let naive = ThetaGraph::build_naive(&data, 0.3);
        prop_assert_eq!(fast.graph, naive.graph);
    }

    #[test]
    fn cone_cover_assigns_every_nonzero_direction(
        vx in -10.0f64..10.0,
        vy in -10.0f64..10.0,
        vz in -10.0f64..10.0,
    ) {
        prop_assume!(vx != 0.0 || vy != 0.0 || vz != 0.0);
        let cs = ConeSet::covering(3, 0.5);
        let v = [vx, vy, vz];
        let c = cs.cone_of(&v);
        prop_assert!(c.is_some());
        let angle = cs.snap_angle(&v).unwrap();
        prop_assert!(angle <= 0.25 + 1e-9, "snap angle {angle} exceeds theta/2");
    }

    #[test]
    fn adversarial_metric_satisfies_axioms_for_random_parameters(
        s in 2u32..5,
        d in 1u32..3,
        t in 1u32..3,
        star_sel in 0usize..1000,
    ) {
        let inst = BlockInstance::new(s, d, t);
        let p_star = star_sel % inst.n();
        let metric = AdversarialMetric::new(s as i64, inst.points[p_star].clone());
        let mut pts: Vec<BPoint> = inst.points.iter().cloned().map(BPoint::Data).collect();
        pts.push(BPoint::Query);
        // Sample a subset to keep the cubic check fast.
        let sample: Vec<BPoint> = pts.iter().step_by(1 + pts.len() / 12).cloned().collect();
        prop_assert!(axioms::check_all(&metric, &sample).is_ok());
    }
}

// ---------------------------------------------------------------------------
// Appendix E facts (the geometry behind Lemma 5.1), verified numerically.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Fact E.1: tan x <= 2x for 0 <= x <= 1/2.
    #[test]
    fn fact_e1_tan_bound(x in 0.0f64..0.5) {
        prop_assert!(x.tan() <= 2.0 * x + 1e-12);
    }

    /// Fact E.2: for an isosceles triangle with apex angle 0 < γ < π/2 and
    /// equal sides l, the base is < l · tan γ.
    #[test]
    fn fact_e2_isosceles_base_bound(gamma in 1e-6f64..1.5, l in 0.1f64..100.0) {
        prop_assume!(gamma < std::f64::consts::FRAC_PI_2);
        let base = 2.0 * l * (gamma / 2.0).sin();
        prop_assert!(base < l * gamma.tan() + 1e-9,
            "base {base} vs l tan γ = {}", l * gamma.tan());
    }

    /// Fact E.3: for 0 <= γ <= ε/32 and 0 < ε <= 1,
    /// (2 + ε)(2 tan γ + 1 − cos γ) < ε.
    #[test]
    fn fact_e3_lemma51_constant(eps in 0.001f64..1.0, frac in 0.0f64..1.0) {
        let gamma = frac * eps / 32.0;
        let lhs = (2.0 + eps) * (2.0 * gamma.tan() + 1.0 - gamma.cos());
        prop_assert!(lhs < eps, "lhs {lhs} >= eps {eps} at γ = {gamma}");
    }

    /// The derived inequality inside Fact 2.2's proof:
    /// with η = ceil(log2(1 + 2/ε)), 2^η − 1 >= 2/ε.
    #[test]
    fn fact22_eta_inequality(eps in 0.001f64..1.0) {
        let eta = (1.0f64 + 2.0 / eps).log2().ceil() as i32;
        prop_assert!((2.0f64).powi(eta) - 1.0 >= 2.0 / eps - 1e-9);
    }

    /// Lemma E.1 (shape): points on the two sphere surfaces B(q, r) and
    /// B(q, (1+ε)r) that are equidistant from p subtend an angle > ε/8 at p.
    /// Verified in the plane with random configurations.
    #[test]
    fn lemma_e1_angle_separation(
        eps in 0.05f64..1.0,
        r in 0.5f64..10.0,
        // p outside B(q, (1+ε)r): its distance is (1+ε)r (greedy setting).
        ax in 0.0f64..std::f64::consts::PI,
    ) {
        // q at origin; p at distance (1+eps)*r along +x; x on the inner
        // sphere at angle ax. Find a y on the outer sphere with
        // |p - y| = |p - x| (if one exists) and check the angle at p.
        let q = [0.0, 0.0];
        let p = [(1.0 + eps) * r, 0.0];
        let x = [r * ax.cos(), r * ax.sin()];
        let dpx = ((p[0] - x[0]).powi(2) + (p[1] - x[1]).powi(2)).sqrt();
        // y on outer sphere: |y| = (1+eps) r, |p - y| = dpx. Law of cosines
        // gives the angle of y as seen from q.
        let ro = (1.0 + eps) * r;
        let dp = (p[0].powi(2) + p[1].powi(2)).sqrt();
        let cos_at_q = (dp * dp + ro * ro - dpx * dpx) / (2.0 * dp * ro);
        prop_assume!(cos_at_q.abs() <= 1.0);
        let ay = cos_at_q.acos();
        let y = [ro * ay.cos(), ro * ay.sin()];
        let _ = q;
        // Angle between rays p->x and p->y.
        let ux = [x[0] - p[0], x[1] - p[1]];
        let uy = [y[0] - p[0], y[1] - p[1]];
        let nx = (ux[0] * ux[0] + ux[1] * ux[1]).sqrt();
        let ny = (uy[0] * uy[0] + uy[1] * uy[1]).sqrt();
        prop_assume!(nx > 1e-9 && ny > 1e-9);
        let cosang = ((ux[0] * uy[0] + ux[1] * uy[1]) / (nx * ny)).clamp(-1.0, 1.0);
        let angle = cosang.acos();
        // x and y genuinely on different spheres with equal distance to p.
        prop_assume!((x[0] - y[0]).abs() + (x[1] - y[1]).abs() > 1e-9);
        prop_assert!(angle > eps / 8.0 - 1e-9,
            "angle {angle} <= eps/8 = {}", eps / 8.0);
    }
}

#[test]
fn navigability_checker_is_consistent_with_greedy_on_random_instances() {
    // Deterministic sweep (not proptest: heavier); if check_navigable says
    // OK then exhaustive greedy must agree, and vice versa, across a grid of
    // configurations including broken graphs.
    use proximity_graphs::core::{check_pg_exhaustive, Starts};
    use proximity_graphs::workloads;
    for seed in 0..5u64 {
        let pts = workloads::uniform_cube(40, 2, 30.0, seed);
        let queries = workloads::uniform_queries(8, 2, -5.0, 35.0, seed + 50);
        let data = Dataset::new(pts, Euclidean);
        let g = GNet::build(&data, 1.0);
        // Progressively break the graph.
        let mut graph = g.graph.clone();
        for round in 0..6 {
            let nav = check_navigable(&graph, &data, &queries, 1.0).is_ok();
            let exh = check_pg_exhaustive(&graph, &data, &queries, 1.0, Starts::All).is_ok();
            assert_eq!(nav, exh, "seed {seed}, round {round}: checkers disagree");
            // Remove the out-edges of one more vertex.
            let v = (round * 7) as u32 % 40;
            for &t in graph.neighbors(v).to_vec().iter() {
                graph = graph.without_edge(v, t);
            }
        }
    }
}
