//! Integration: end-to-end pipelines — instrumented construction-cost
//! ordering, budgeted queries, recall across all indexes, and the
//! theorem-shaped scaling facts that must hold on any machine (distance
//! counts, not wall clock).

use proximity_graphs::baselines::{nsw, vamana, Hnsw, HnswParams, NswParams, VamanaParams};
use proximity_graphs::core::{beam_search, greedy, query, GNet, MergedGraph, MergedParams};
use proximity_graphs::metric::{Counting, Dataset, Euclidean};
use proximity_graphs::workloads;

#[test]
fn fast_builder_uses_fewer_distances_than_naive() {
    let points = workloads::uniform_cube(600, 2, 100.0, 1);
    let data = Dataset::new(points, Counting::new(Euclidean));
    let _ = GNet::build_fast(&data, 1.0);
    let fast = data.metric().take();
    let _ = GNet::build_naive(&data, 1.0);
    let naive = data.metric().take();
    assert!(
        fast * 3 < naive,
        "fast ({fast}) should be well below naive ({naive})"
    );
}

#[test]
fn construction_cost_scales_subquadratically() {
    // Distance-count version of the T1.1-build experiment, as a regression
    // test: doubling n must far less than quadruple the fast builder's cost.
    let cost = |n: usize| {
        let points = workloads::uniform_cube(n, 2, (n as f64).sqrt() * 4.0, 2);
        let data = Dataset::new(points, Counting::new(Euclidean));
        let _ = GNet::build_fast(&data, 1.0);
        data.metric().count()
    };
    let c1 = cost(1000);
    let c2 = cost(2000);
    let growth = c2 as f64 / c1 as f64;
    assert!(
        growth < 3.0,
        "near-linear construction expected; observed growth factor {growth}"
    );
}

#[test]
fn greedy_query_cost_is_sublinear() {
    let n = 4000;
    let points = workloads::uniform_cube(n, 2, 260.0, 3);
    let data = Dataset::new(points, Counting::new(Euclidean));
    let g = GNet::build_fast(&data, 1.0);
    data.metric().reset();
    let queries = workloads::uniform_queries(20, 2, 0.0, 260.0, 4);
    let mut reported = 0u64;
    for q in &queries {
        reported += greedy(&g.graph, &data, 0, q).dist_comps;
    }
    let counted = data.metric().count();
    assert_eq!(reported, counted, "distance accounting must be exact");
    assert!(
        counted < (n as u64) * queries.len() as u64 / 3,
        "greedy should be well below brute force"
    );
}

#[test]
fn budgeted_query_respects_the_budget_exactly() {
    let points = workloads::uniform_cube(500, 2, 100.0, 5);
    let data = Dataset::new(points, Counting::new(Euclidean));
    let g = GNet::build_fast(&data, 1.0);
    let q = vec![50.0, 50.0];
    for budget in [1u64, 5, 20, 100] {
        data.metric().reset();
        let out = query(&g.graph, &data, 0, &q, budget);
        assert!(out.dist_comps <= budget);
        assert_eq!(out.dist_comps, data.metric().count());
        if !out.self_terminated {
            assert_eq!(out.dist_comps, budget);
        }
    }
    // A generous budget lets greedy self-terminate with the guarantee.
    data.metric().reset();
    let out = query(&g.graph, &data, 0, &q, u64::MAX);
    assert!(out.self_terminated);
    let (_, exact) = data.nearest_brute(&q);
    assert!(out.result_dist <= 2.0 * exact + 1e-9);
}

#[test]
fn all_indexes_reach_reasonable_recall() {
    let n = 500;
    let points = workloads::gaussian_clusters(n, 2, 8, 2.0, 80.0, 6);
    let data = Dataset::new(points, Euclidean);
    let queries = workloads::perturbed_queries(data.points(), 50, 0.5, 7);
    let truth: Vec<usize> = queries.iter().map(|q| data.nearest_brute(q).0).collect();

    let recall = |hits: usize| hits as f64 / queries.len() as f64;

    let g = GNet::build_fast(&data, 1.0);
    let hits = queries
        .iter()
        .zip(&truth)
        .filter(|(q, &t)| greedy(&g.graph, &data, 0, q).result as usize == t)
        .count();
    assert!(recall(hits) >= 0.9, "G_net greedy recall {}", recall(hits));

    let m = MergedGraph::build(&data, MergedParams::new(1.0).with_theta(0.25));
    let hits = queries
        .iter()
        .zip(&truth)
        .filter(|(q, &t)| greedy(&m.graph, &data, 0, q).result as usize == t)
        .count();
    assert!(recall(hits) >= 0.9, "merged greedy recall {}", recall(hits));

    let v = vamana(&data, VamanaParams::default());
    let hits = queries
        .iter()
        .zip(&truth)
        .filter(|(q, &t)| beam_search(&v, &data, 0, q, 24, 1).0[0].0 as usize == t)
        .count();
    assert!(recall(hits) >= 0.85, "vamana recall {}", recall(hits));

    let h = Hnsw::build(&data, HnswParams::default());
    let hits = queries
        .iter()
        .zip(&truth)
        .filter(|(q, &t)| h.search(&data, q, 24, 1).0[0].0 as usize == t)
        .count();
    assert!(recall(hits) >= 0.85, "hnsw recall {}", recall(hits));

    let ns = nsw(&data, NswParams::default());
    let hits = queries
        .iter()
        .zip(&truth)
        .filter(|(q, &t)| beam_search(&ns, &data, 0, q, 24, 1).0[0].0 as usize == t)
        .count();
    assert!(recall(hits) >= 0.75, "nsw recall {}", recall(hits));
}

#[test]
fn hop_count_respects_the_log_drop_ceiling() {
    // Section 2.3: greedy needs at most h iterations to reach a (1+ε)-ANN.
    let points = workloads::geometric_chain(12, 30, 3.0, 2, 8);
    let data = Dataset::new(points, Euclidean);
    let g = GNet::build_fast(&data, 1.0);
    let h = g.hierarchy.h();
    let queries = workloads::perturbed_queries(data.points(), 30, 0.2, 9);
    for (i, q) in queries.iter().enumerate() {
        let start = ((i * 37) % data.len()) as u32;
        let out = greedy(&g.graph, &data, start, q);
        let (_, nn) = data.nearest_brute(q);
        let first_ann = out
            .hops
            .iter()
            .position(|&v| data.dist_to(v as usize, q) <= 2.0 * nn + 1e-12)
            .expect("greedy reaches a 2-ANN");
        assert!(
            first_ann <= h + 1,
            "query {i}: reached 2-ANN after {first_ann} hops, h = {h}"
        );
    }
}

#[test]
fn merged_graph_query_cost_tracks_gnet_within_a_factor() {
    let points = workloads::uniform_cube(2000, 2, 180.0, 10);
    let data = Dataset::new(points, Counting::new(Euclidean));
    let g = GNet::build_fast(&data, 1.0);
    let m = MergedGraph::build(&data, MergedParams::new(1.0));
    let queries = workloads::uniform_queries(20, 2, 0.0, 180.0, 11);
    let mut cg = 0u64;
    let mut cm = 0u64;
    for q in &queries {
        cg += greedy(&g.graph, &data, 7, q).dist_comps;
        cm += greedy(&m.graph, &data, 7, q).dist_comps;
    }
    // Theorem 1.3's query bound carries an extra log n factor; empirically
    // the two stay within a small constant on uniform data.
    assert!(
        cm < cg * 6,
        "merged query cost {cm} too far above G_net {cg}"
    );
}
