//! Sharded-search parity (PR 9 tentpole contract): a [`ShardedEngine`]
//! answering with `ef >= n` must be **bit-identical** to a single
//! [`QueryEngine`] over the same points — result ids, result distances,
//! merge order, and aggregate `dist_comps` — for every shard count in
//! {1, 2, 3, 8} and every thread count in {1, 2, machine}.
//!
//! The datasets are deliberately tie-heavy: distinct points on a small
//! integer grid queried from integer positions, so many candidates sit at
//! *exactly* equal distances and only the deterministic
//! `(surrogate, global id)` tie-break keeps the merge order pinned. A merge
//! in rounded true-distance space, or one keyed by shard-local ids, fails
//! this suite immediately.

use proptest::prelude::*;
use proximity_graphs::core::{GNet, QueryEngine, ShardAssignment, ShardedEngine};
use proximity_graphs::metric::{Euclidean, FlatPoints, FlatRow};

fn thread_counts() -> [usize; 3] {
    let machine = std::thread::available_parallelism().map_or(1, |c| c.get());
    [1, 2, machine]
}

/// Strategy: 8..=60 distinct points on a 12×12 integer grid — small enough
/// that every query sees piles of exact distance ties.
fn tie_heavy_points() -> impl Strategy<Value = FlatPoints> {
    prop::collection::vec((0i32..12, 0i32..12), 8..60)
        .prop_map(|mut cells| {
            cells.sort_unstable();
            cells.dedup();
            cells
        })
        .prop_filter("need >= 8 distinct points", |cells| cells.len() >= 8)
        .prop_map(|cells| {
            let mut pts = FlatPoints::new(2);
            for (x, y) in cells {
                pts.push(&[x as f64, y as f64]);
            }
            pts
        })
}

/// Strategy: 1..6 integer-position queries (maximally tie-inducing).
fn integer_queries() -> impl Strategy<Value = Vec<FlatRow>> {
    prop::collection::vec(
        (0i32..12, 0i32..12).prop_map(|(x, y)| FlatRow::from(vec![x as f64, y as f64])),
        1..6,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn sharded_exact_search_is_bit_identical_to_the_single_engine(
        points in tie_heavy_points(),
        queries in integer_queries(),
        seed in 0u64..1_000_000,
        k in 1usize..7,
    ) {
        let n = points.len();
        let single = {
            let data = points.clone().into_dataset(Euclidean);
            let g = GNet::build(&data, 1.0);
            QueryEngine::new(g.graph, data)
        };
        // ef = n makes beam search exact: the single engine is the oracle.
        let starts = vec![0u32; queries.len()];
        let want = single.batch_beam_detailed(&starts, &queries, n, k);

        for shards in [1usize, 2, 3, 8] {
            let engine = ShardedEngine::build(
                &points,
                Euclidean,
                1.0,
                shards,
                &ShardAssignment::SeededRandom { seed },
            );
            for threads in thread_counts() {
                let got = engine
                    .clone()
                    .with_threads(threads)
                    .batch_beam_detailed(&queries, n, k);
                // Merge order, ids, and distances — all pinned at once:
                // BeamOutcome equality is exact on the full result lists.
                prop_assert_eq!(
                    &got.outcomes,
                    &want.outcomes,
                    "diverged at {} shards / {} threads",
                    shards,
                    threads
                );
                // Exactness visits each point once per query, in every
                // sharding: the aggregate cost is pinned too.
                prop_assert_eq!(got.dist_comps, want.dist_comps);
                prop_assert_eq!(got.dist_comps, (n * queries.len()) as u64);
            }
        }
    }

    #[test]
    fn assignment_partitions_exactly_for_every_seed_and_count(
        n in 8usize..200,
        shards in 1usize..8,
        seed in 0u64..1_000_000,
    ) {
        let parts = ShardAssignment::SeededRandom { seed }.assign(n, shards);
        prop_assert_eq!(parts.len(), shards);
        let mut seen = vec![false; n];
        for part in &parts {
            prop_assert!(!part.is_empty(), "empty shard");
            prop_assert!(part.windows(2).all(|w| w[0] < w[1]), "not ascending");
            // Balanced to within one point.
            prop_assert!(part.len().abs_diff(n / shards) <= 1);
            for &id in part {
                prop_assert!(!seen[id as usize], "id {} assigned twice", id);
                seen[id as usize] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "some id unassigned");
    }
}
