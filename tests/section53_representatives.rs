//! Integration: the Section 5.3 representative-query argument, executed.
//!
//! The paper derandomizes "one query" into "all queries" by observing that
//! `greedy`'s execution depends only on the outcomes of comparisons
//! `L2(p1, q) < L2(p2, q)`: two queries inducing the same comparison order
//! drive `greedy` identically, *regardless of which proximity graph is
//! adopted*. The `O(n^2)` perpendicular bisectors dissect `R^d` into
//! `O(n^{2d})` polytopes of equivalent queries.
//!
//! These tests verify the observation operationally: queries in the same
//! bisector cell produce hop-for-hop identical greedy walks on every graph
//! we build, and crossing a bisector is the only way walks can diverge.

use proximity_graphs::baselines::vamana;
use proximity_graphs::baselines::VamanaParams;
use proximity_graphs::core::{greedy, GNet, MergedGraph, MergedParams, ThetaGraph};
use proximity_graphs::metric::{Dataset, Euclidean, Metric};
use proximity_graphs::workloads;

/// The comparison signature of a query: the id order of all points by
/// distance (ties broken by id — queries on a bisector are excluded by the
/// strictness check below).
fn signature(data: &Dataset<Vec<f64>, Euclidean>, q: &[f64]) -> Option<Vec<usize>> {
    let mut order: Vec<(f64, usize)> = (0..data.len())
        .map(|i| (data.dist_to(i, &q.to_vec()), i))
        .collect();
    order.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    // Reject queries sitting (numerically) on a bisector.
    for w in order.windows(2) {
        if (w[0].0 - w[1].0).abs() < 1e-9 {
            return None;
        }
    }
    Some(order.into_iter().map(|(_, i)| i).collect())
}

#[test]
fn same_cell_queries_walk_identically_on_every_graph() {
    let points = workloads::uniform_cube(120, 2, 80.0, 5);
    let data = Dataset::new(points, Euclidean);
    let gnet = GNet::build(&data, 1.0);
    let theta = ThetaGraph::build(&data, 0.3);
    let merged = MergedGraph::build(&data, MergedParams::new(1.0).with_theta(0.3));
    let vam = vamana(&data, VamanaParams::default());
    let graphs = [&gnet.graph, &theta.graph, &merged.graph, &vam];

    let queries = workloads::uniform_queries(40, 2, 0.0, 80.0, 6);
    let mut tested = 0;
    for q in &queries {
        let Some(sig1) = signature(&data, q) else {
            continue;
        };
        // Perturb by much less than the smallest distance gap: if the
        // signature is unchanged, the cell is unchanged.
        let q2: Vec<f64> = vec![q[0] + 1e-7, q[1] - 1e-7];
        let Some(sig2) = signature(&data, &q2) else {
            continue;
        };
        if sig1 != sig2 {
            continue; // crossed a bisector; not a same-cell pair
        }
        tested += 1;
        for (gi, g) in graphs.iter().enumerate() {
            for start in [0u32, 17, 63, 119] {
                let w1 = greedy(g, &data, start, q);
                let w2 = greedy(g, &data, start, &q2);
                assert_eq!(
                    w1.hops, w2.hops,
                    "graph #{gi}, start {start}: same-cell queries diverged"
                );
                assert_eq!(w1.result, w2.result);
            }
        }
    }
    assert!(tested >= 20, "too few same-cell pairs tested: {tested}");
}

#[test]
fn different_cells_can_diverge() {
    // Sanity for the test above: queries in different cells generally do
    // produce different walks (so the same-cell test is not vacuous).
    let points = workloads::uniform_cube(80, 2, 50.0, 7);
    let data = Dataset::new(points, Euclidean);
    let g = GNet::build(&data, 1.0);
    let q1 = vec![5.0, 5.0];
    let q2 = vec![45.0, 45.0];
    let w1 = greedy(&g.graph, &data, 0, &q1);
    let w2 = greedy(&g.graph, &data, 0, &q2);
    assert_ne!(
        w1.result, w2.result,
        "far-apart queries should find different NNs"
    );
}

#[test]
fn greedy_depends_only_on_comparisons_not_magnitudes() {
    // Scale-invariance corollary: multiplying all coordinates by a constant
    // preserves every comparison, so walks are identical.
    let points = workloads::uniform_cube(100, 2, 60.0, 8);
    let scaled: Vec<Vec<f64>> = points
        .iter()
        .map(|p| p.iter().map(|x| x * 7.5).collect())
        .collect();
    let d1 = Dataset::new(points, Euclidean);
    let d2 = Dataset::new(scaled, Euclidean);
    let g1 = GNet::build(&d1, 1.0);
    let g2 = GNet::build(&d2, 1.0);
    assert_eq!(g1.graph, g2.graph, "G_net itself is scale-invariant");
    for q in workloads::uniform_queries(10, 2, 0.0, 60.0, 9) {
        let qs: Vec<f64> = q.iter().map(|x| x * 7.5).collect();
        let w1 = greedy(&g1.graph, &d1, 3, &q);
        let w2 = greedy(&g2.graph, &d2, 3, &qs);
        assert_eq!(w1.hops, w2.hops);
        let _ = Euclidean.dist(&q, &qs);
    }
}
