//! Integration: Theorem 1.2 end to end — the hard instances force their
//! edge counts on *this library's own graphs*, and every single forced-edge
//! deletion is caught by the verifiers.

use proximity_graphs::core::{check_navigable, GNet, Graph};
use proximity_graphs::hardness::{BPoint, BlockInstance, TreeInstance};

#[test]
fn gnet_on_tree_instance_contains_all_forced_edges() {
    for (n, delta) in [(4u64, 8u64), (8, 32), (8, 128), (16, 128)] {
        let inst = TreeInstance::new(n, delta);
        let data = inst.dataset();
        let g = GNet::build(&data, 1.0);
        assert_eq!(
            inst.find_missing_required_edge(&g.graph),
            None,
            "n={n}, Δ={delta}: G_net (a 2-PG) must pay the Ω(n log Δ) bound"
        );
        // And its total size is within a constant factor of the bound.
        let ratio = g.graph.edge_count() as f64 / inst.required_edge_count() as f64;
        assert!(ratio < 8.0, "G_net pays {ratio}x the forced count");
    }
}

#[test]
fn gnet_on_block_instance_contains_all_forced_edges() {
    for (s, d, t) in [(2u32, 1u32, 3u32), (2, 2, 2), (3, 2, 2), (2, 3, 2)] {
        let inst = BlockInstance::new(s, d, t);
        let data = inst.data_dataset();
        let g = GNet::build(&data, inst.epsilon());
        assert_eq!(
            inst.find_missing_required_edge(&g.graph),
            None,
            "s={s}, d={d}, t={t}: G_net must contain every intra-block pair"
        );
    }
}

#[test]
fn tree_adversary_catches_every_forced_edge_deletion() {
    let inst = TreeInstance::new(8, 32);
    let complete = Graph::complete(inst.len());
    for (v1, v2) in inst.required_edges() {
        let broken = complete.without_edge(v1, v2);
        let viol = inst
            .adversary_violation(&broken, v1, v2)
            .expect("deleting a forced edge must break 2-navigability");
        assert_eq!(viol.point, v1);
        assert_eq!(viol.nn_dist, 0.0, "query is a data point of P2");
    }
}

#[test]
fn block_adversary_catches_every_forced_edge_deletion() {
    let inst = BlockInstance::new(2, 2, 3);
    let complete = Graph::complete(inst.n());
    for (p1, p2) in inst.required_edges() {
        let broken = complete.without_edge(p1, p2);
        let viol = inst
            .adversary_violation(&broken, p1, p2)
            .expect("Alice must win after deleting an intra-block edge");
        assert_eq!(viol.point, p1);
        // D(p1, q) = s, NN distance = s - 1.
        assert_eq!(viol.dist, inst.s as f64);
        assert_eq!(viol.nn_dist, (inst.s - 1) as f64);
    }
}

#[test]
fn tree_gnet_routes_every_leaf_query_correctly() {
    // Beyond edge counting: greedy on G_net over the tree metric actually
    // finds every leaf from every start.
    let inst = TreeInstance::new(8, 32);
    let data = inst.dataset();
    let g = GNet::build(&data, 1.0);
    let queries: Vec<_> = (0..data.len()).map(|i| *data.point(i)).collect();
    proximity_graphs::core::check_pg_exhaustive(
        &g.graph,
        &data,
        &queries,
        1.0,
        proximity_graphs::core::Starts::All,
    )
    .unwrap();
}

#[test]
fn block_gnet_survives_every_adversary_choice() {
    // G_net contains all intra-block edges, so no matter which p* Alice
    // picks, navigability holds for the query q.
    let inst = BlockInstance::new(2, 2, 2);
    let data = inst.data_dataset();
    let g = GNet::build(&data, inst.epsilon());
    for p_star in 0..inst.n() {
        let adv = inst.adversarial_dataset(p_star);
        check_navigable(&g.graph, &adv, &[BPoint::Query], inst.epsilon())
            .unwrap_or_else(|v| panic!("p* = {p_star}: {v}"));
    }
}

#[test]
fn forced_edge_counts_match_the_paper_formulas() {
    // Statement 1: |P1| * |P2| with |P1| = n, |P2| = ceil(h/2).
    for (n, delta) in [(4u64, 8u64), (8, 32), (16, 128), (32, 512)] {
        let inst = TreeInstance::new(n, delta);
        let h = inst.h as u64;
        assert_eq!(inst.required_edge_count(), n * h.div_ceil(2));
    }
    // Statement 2: s^d (s^d - 1) t >= s^d * n / 2 (since s^d >= 2).
    for (s, d, t) in [(2u32, 2u32, 3u32), (3, 2, 2), (4, 1, 5)] {
        let inst = BlockInstance::new(s, d, t);
        let sd = (s as u64).pow(d);
        assert_eq!(inst.required_edge_count(), sd * (sd - 1) * t as u64);
        assert!(inst.required_edge_count() * 2 >= sd * inst.n() as u64);
    }
}
