//! Snapshot parity: a saved-then-loaded `QueryEngine` must be
//! **observationally identical** to the engine it was saved from — same
//! graph, same coordinates bit for bit, and identical `batch_greedy` /
//! `batch_query` / `batch_beam` answers (results, hops, `dist_comps`) at
//! every thread count. Persistence, like parallelism and the flat layout
//! (`tests/flat_parity.rs`), is allowed to change the wall clock only.

use proptest::prelude::*;
use proximity_graphs::core::{GNet, QueryEngine};
use proximity_graphs::metric::{Euclidean, FlatRow};
use proximity_graphs::store::MetricTag;
use proximity_graphs::workloads;

fn thread_counts() -> [usize; 3] {
    let machine = std::thread::available_parallelism().map_or(1, |c| c.get());
    [1, 2, machine]
}

fn temp_path(n: usize, d: usize, seed: u64) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "pg_snap_parity_{}_{n}_{d}_{seed}.pgix",
        std::process::id()
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn saved_then_loaded_engine_answers_bit_identically(
        n in 8usize..90,
        d in 1usize..5,
        m in 1usize..10,
        seed in 0u64..1_000_000,
        budget in 1u64..200,
        ef in 1usize..8,
        k in 1usize..6,
    ) {
        let side = 40.0;
        let data = workloads::uniform_cube_flat(n, d, side, seed).into_dataset(Euclidean);
        let g = GNet::build_fast(&data, 1.0);
        let params = g.params;
        let engine = QueryEngine::new(g.graph, data);

        let path = temp_path(n, d, seed);
        engine.save_with(&path, 0, Some(params.into())).unwrap();
        let (loaded, meta) = QueryEngine::<FlatRow, Euclidean>::load_with_meta(&path).unwrap();
        std::fs::remove_file(&path).unwrap();

        // The stored artifacts round-trip exactly.
        prop_assert_eq!(loaded.graph(), engine.graph());
        prop_assert_eq!(loaded.data().len(), engine.data().len());
        for i in 0..engine.data().len() {
            prop_assert_eq!(
                loaded.data().point(i).coords(),
                engine.data().point(i).coords()
            );
        }
        prop_assert_eq!(meta.metric, MetricTag::Euclidean);
        prop_assert_eq!(meta.n, n as u64);
        prop_assert_eq!(meta.dims, d as u32);
        prop_assert_eq!(meta.build.unwrap().epsilon, params.epsilon);

        // ...and so does every observable of the serving API, for thread
        // counts 1 / 2 / machine.
        let queries = workloads::uniform_queries_flat(m, d, -5.0, side + 5.0, seed ^ 0x5A5A)
            .into_rows();
        let starts: Vec<u32> = (0..m).map(|i| ((i * 37 + seed as usize) % n) as u32).collect();
        for threads in thread_counts() {
            let a = engine.clone().with_threads(threads);
            let b = loaded.clone().with_threads(threads);

            let ba = a.batch_greedy(&starts, &queries);
            let bb = b.batch_greedy(&starts, &queries);
            prop_assert_eq!(ba.dist_comps, bb.dist_comps, "greedy at {} threads", threads);
            for (x, y) in ba.outcomes.iter().zip(bb.outcomes.iter()) {
                prop_assert_eq!(x.result, y.result);
                prop_assert_eq!(x.result_dist, y.result_dist);
                prop_assert_eq!(&x.hops, &y.hops);
                prop_assert_eq!(x.dist_comps, y.dist_comps);
                prop_assert_eq!(x.self_terminated, y.self_terminated);
            }

            let ba = a.batch_query(&starts, &queries, budget);
            let bb = b.batch_query(&starts, &queries, budget);
            prop_assert_eq!(ba.dist_comps, bb.dist_comps, "budgeted at {} threads", threads);
            for (x, y) in ba.outcomes.iter().zip(bb.outcomes.iter()) {
                prop_assert_eq!(x.result, y.result);
                prop_assert_eq!(x.result_dist, y.result_dist);
                prop_assert_eq!(&x.hops, &y.hops);
                prop_assert_eq!(x.dist_comps, y.dist_comps);
                prop_assert_eq!(x.self_terminated, y.self_terminated);
            }

            let ba = a.batch_beam(&starts, &queries, ef, k);
            let bb = b.batch_beam(&starts, &queries, ef, k);
            prop_assert_eq!(&ba.results, &bb.results, "beam at {} threads", threads);
            prop_assert_eq!(ba.dist_comps, bb.dist_comps);
        }
    }
}
