//! Guard that every secondary target keeps compiling.
//!
//! `cargo test` exercises libs and test targets, but examples, criterion
//! benches and the `exp_*` experiment binaries are easy to break silently.
//! This test shells back into cargo so a plain `cargo test` refuses to pass
//! while any of them fails to compile. CI additionally runs the same check
//! as its own step (see `.github/workflows/ci.yml`).

use std::process::Command;

#[test]
fn examples_benches_and_bins_compile() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let output = Command::new(cargo)
        .args([
            "check",
            "--workspace",
            "--examples",
            "--benches",
            "--bins",
            "--quiet",
        ])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("failed to spawn cargo check");
    assert!(
        output.status.success(),
        "cargo check --workspace --examples --benches --bins failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
}
