//! Sharded snapshot round-trip (PR 9 satellite): a saved-then-loaded
//! [`ShardedEngine`] answers bit-identically to the engine it was saved
//! from, and a damaged directory — a corrupt or missing shard file, a
//! corrupt or missing manifest, a shard/manifest size disagreement — fails
//! the **whole** load with a typed [`SnapshotError`]. `ShardedEngine::load`
//! returns `Result<Self, _>`, so there is no partially-loaded engine to
//! observe: every corruption case below gets an `Err` and nothing else.

use proximity_graphs::core::{ShardAssignment, ShardedEngine};
use proximity_graphs::metric::{Euclidean, FlatPoints, FlatRow};
use proximity_graphs::store::{shard_file_name, SnapshotError, SHARD_MANIFEST_FILE};

fn grid(n: usize) -> FlatPoints {
    FlatPoints::from_fn(n, 2, |i, out| {
        out.push((i % 11) as f64);
        out.push((i / 11) as f64);
    })
}

fn queries(m: usize) -> Vec<FlatRow> {
    (0..m)
        .map(|i| FlatRow::from(vec![(i % 9) as f64 + 0.25, (i % 4) as f64 + 0.5]))
        .collect()
}

fn build(n: usize, shards: usize) -> ShardedEngine<Euclidean> {
    ShardedEngine::build(
        &grid(n),
        Euclidean,
        1.0,
        shards,
        &ShardAssignment::SeededRandom { seed: 17 },
    )
}

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pg_sharded_snap_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn saved_then_loaded_sharded_engine_answers_bit_identically() {
    let engine = build(90, 4);
    let dir = temp_dir("round_trip");
    engine.save(&dir).unwrap();
    let loaded = ShardedEngine::<Euclidean>::load(&dir).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();

    // The stored structure round-trips exactly…
    assert_eq!(loaded.len(), engine.len());
    assert_eq!(loaded.shard_count(), engine.shard_count());
    assert_eq!(loaded.global_ids(), engine.global_ids());
    assert_eq!(loaded.build_params(), engine.build_params());
    for (a, b) in loaded.shards().iter().zip(engine.shards()) {
        assert_eq!(a.graph(), b.graph());
        for i in 0..b.data().len() {
            assert_eq!(a.data().point(i).coords(), b.data().point(i).coords());
        }
    }

    // …and so does every observable answer, exact and inexact, at several
    // thread counts.
    let qs = queries(8);
    let machine = std::thread::available_parallelism().map_or(1, |c| c.get());
    for threads in [1, 2, machine] {
        for (ef, k) in [(90, 5), (12, 3), (1, 1)] {
            let a = engine
                .clone()
                .with_threads(threads)
                .batch_beam_detailed(&qs, ef, k);
            let b = loaded
                .clone()
                .with_threads(threads)
                .batch_beam_detailed(&qs, ef, k);
            assert_eq!(a.outcomes, b.outcomes, "ef {ef} k {k} threads {threads}");
            assert_eq!(a.dist_comps, b.dist_comps);
        }
    }
}

#[test]
fn corrupting_any_single_shard_file_fails_the_whole_load() {
    let engine = build(60, 3);
    let dir = temp_dir("corrupt_shard");
    engine.save(&dir).unwrap();

    for i in 0..engine.shard_count() {
        let path = dir.join(shard_file_name(i));
        let pristine = std::fs::read(&path).unwrap();

        // Flip one payload byte: the shard's own checksum catches it.
        let mut bad = pristine.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x01;
        std::fs::write(&path, &bad).unwrap();
        let err = ShardedEngine::<Euclidean>::load(&dir).unwrap_err();
        assert!(
            matches!(err, SnapshotError::ChecksumMismatch { .. }),
            "shard {i} byte flip: {err}"
        );

        // Truncate it: typed, never a panic.
        std::fs::write(&path, &pristine[..pristine.len() / 3]).unwrap();
        assert!(ShardedEngine::<Euclidean>::load(&dir).is_err());

        // Remove it entirely: the manifest promises it, so the load fails.
        std::fs::remove_file(&path).unwrap();
        let err = ShardedEngine::<Euclidean>::load(&dir).unwrap_err();
        assert!(
            matches!(err, SnapshotError::Io(_)),
            "shard {i} missing: {err}"
        );

        // Restore and confirm the directory loads again — proof the other
        // shards were untouched and the failure was this file alone.
        std::fs::write(&path, &pristine).unwrap();
        assert!(ShardedEngine::<Euclidean>::load(&dir).is_ok());
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn manifest_damage_fails_the_whole_load() {
    let engine = build(40, 2);
    let dir = temp_dir("corrupt_manifest");
    engine.save(&dir).unwrap();
    let path = dir.join(SHARD_MANIFEST_FILE);
    let pristine = std::fs::read(&path).unwrap();

    // Corrupt manifest payload: its checksum frame rejects it.
    let mut bad = pristine.clone();
    bad[20] ^= 0xFF;
    std::fs::write(&path, &bad).unwrap();
    let err = ShardedEngine::<Euclidean>::load(&dir).unwrap_err();
    assert!(
        matches!(err, SnapshotError::ChecksumMismatch { .. }),
        "{err}"
    );

    // Missing manifest: nothing to load from, typed I/O error.
    std::fs::remove_file(&path).unwrap();
    let err = ShardedEngine::<Euclidean>::load(&dir).unwrap_err();
    assert!(matches!(err, SnapshotError::Io(_)), "{err}");

    std::fs::write(&path, &pristine).unwrap();
    assert!(ShardedEngine::<Euclidean>::load(&dir).is_ok());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn shard_and_manifest_size_disagreement_is_rejected() {
    // Save a 3-shard engine, then overwrite shard 1's file with a shard
    // saved from a *different* engine whose shard 1 has a different size.
    // Both files are individually valid; only the cross-check against the
    // manifest can catch the swap.
    let engine = build(60, 3);
    let other = build(90, 3);
    let dir = temp_dir("size_mismatch");
    let other_dir = temp_dir("size_mismatch_other");
    engine.save(&dir).unwrap();
    other.save(&other_dir).unwrap();

    std::fs::copy(
        other_dir.join(shard_file_name(1)),
        dir.join(shard_file_name(1)),
    )
    .unwrap();
    let err = ShardedEngine::<Euclidean>::load(&dir).unwrap_err();
    match err {
        SnapshotError::Invalid { reason } => {
            assert!(reason.contains("manifest assigns"), "{reason}")
        }
        other => panic!("expected Invalid, got {other}"),
    }

    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&other_dir).unwrap();
}
