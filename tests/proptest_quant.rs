//! Property battery for compact point storage (PR 10): the SQ8 round-trip
//! bound, surrogate-vs-exact ordering agreement beyond twice the
//! quantization error, the re-rank contract (re-ranked top-`k` equals the
//! exact `f64` top-`k` whenever the candidate set contains it), thread-count
//! invariance of the quantized batch path, and the degenerate inputs every
//! affine coder must survive: constant dimensions, a single point, `d = 1`,
//! and signed-zero / subnormal coordinates — including their snapshot paths.

use proptest::prelude::*;
use proximity_graphs::core::{
    beam_search_detailed, beam_search_quantized, beam_search_quantized_surrogate, GNet, Graph,
    QueryEngine,
};
use proximity_graphs::metric::{
    CompactPoints, Dataset, Euclidean, FlatRow, QuantKind, Quantized, Sq8Points,
};
use proximity_graphs::workloads;

fn thread_counts() -> [usize; 3] {
    let machine = std::thread::available_parallelism().map_or(1, |c| c.get());
    [1, 2, machine]
}

fn temp_path(tag: &str, seed: u64) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("pg_quant_{tag}_{}_{seed}.pgix", std::process::id()))
}

/// Exact Euclidean distance from stored point `i` to query `q`.
fn exact_dist(data: &Dataset<FlatRow, Euclidean>, i: usize, q: &FlatRow) -> f64 {
    data.surrogate_to(i, q).sqrt()
}

/// L2 distance between point `i`'s original coordinates and its decode —
/// the per-point quantization error, valid for either representation.
fn decode_error<C: Quantized>(data: &Dataset<FlatRow, Euclidean>, compact: &C, i: usize) -> f64 {
    let mut decoded = Vec::new();
    compact.decode_row(i, &mut decoded);
    data.point(i)
        .coords()
        .iter()
        .zip(&decoded)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// SQ8 decoding is within half a step per dimension — so within
    /// `||step||/2` in L2 — and a constant dimension (step 0) is exact.
    #[test]
    fn sq8_roundtrip_error_is_bounded_by_half_a_step(
        n in 2usize..80,
        d in 1usize..6,
        side in 0.01f64..5000.0,
        seed in 0u64..1_000_000,
    ) {
        let flat = workloads::uniform_cube_flat(n, d, side, seed);
        let rows: Vec<Vec<f64>> =
            (0..n).map(|i| flat.row(i).to_vec()).collect();
        let sq8 = Sq8Points::from_rows(&rows).unwrap();
        let mut decoded = Vec::new();
        for (i, row) in rows.iter().enumerate() {
            sq8.decode_row(i, &mut decoded);
            for j in 0..d {
                let bound = sq8.steps()[j] / 2.0;
                let err = (row[j] - decoded[j]).abs();
                prop_assert!(
                    err <= bound * (1.0 + 1e-12) + 1e-12,
                    "point {i} dim {j}: decode error {err} exceeds step/2 = {bound}"
                );
            }
        }
    }

    /// When two points' exact distances to a query differ by more than
    /// twice the quantization error (plus the query-cast and accumulation
    /// slack of the `f32` kernel), the quantized surrogate must order them
    /// the same way the exact metric does.
    #[test]
    fn surrogate_ordering_agrees_with_exact_beyond_twice_the_quant_error(
        n in 5usize..60,
        d in 1usize..6,
        side in 0.5f64..2000.0,
        seed in 0u64..1_000_000,
    ) {
        let data = workloads::uniform_cube_flat(n, d, side, seed).into_dataset(Euclidean);
        let q = workloads::uniform_queries_flat(1, d, -side, 2.0 * side, seed ^ 0xC0FE)
            .into_rows()
            .remove(0);
        for kind in [QuantKind::F32, QuantKind::Sq8] {
            let rows: Vec<&[f64]> = (0..n).map(|i| data.point(i).coords()).collect();
            let compact = CompactPoints::from_rows(kind, &rows).unwrap();
            let pq = compact.prepare(q.coords());
            // Query-cast error (f32 only) and relative accumulation slack.
            let e_q = match kind {
                QuantKind::F32 => q
                    .coords()
                    .iter()
                    .map(|&x| {
                        let r = x - x as f32 as f64;
                        r * r
                    })
                    .sum::<f64>()
                    .sqrt(),
                QuantKind::Sq8 => 0.0,
            };
            let rel = match kind {
                QuantKind::F32 => 16.0 * d as f64 * f64::from(f32::EPSILON),
                QuantKind::Sq8 => 0.0,
            };
            let err: Vec<f64> = (0..n).map(|i| decode_error(&data, &compact, i)).collect();
            let dist: Vec<f64> = (0..n).map(|i| exact_dist(&data, i, &q)).collect();
            let surr: Vec<f64> = (0..n).map(|i| compact.surrogate(i, &pq)).collect();
            for a in 0..n {
                for b in (a + 1)..n {
                    let gap = (dist[a] - dist[b]).abs();
                    let threshold = 2.0 * (err[a] + err[b] + e_q)
                        + rel * (dist[a] + dist[b])
                        + 1e-9;
                    if gap > threshold {
                        prop_assert_eq!(
                            surr[a] < surr[b],
                            dist[a] < dist[b],
                            "{} surrogate inverted a pair with gap {} > threshold {}: \
                             exact ({}, {}), surrogate ({}, {})",
                            kind.name(), gap, threshold, dist[a], dist[b], surr[a], surr[b]
                        );
                    }
                }
            }
        }
    }

    /// The re-rank contract: whenever the gathered candidate set contains
    /// the exact `f64` top-`k`, the re-ranked top-`k` **equals** it — ids
    /// and (exact) surrogate values alike. Reported surrogates are always
    /// exact, contained or not.
    #[test]
    fn reranked_topk_equals_exact_topk_when_candidates_contain_it(
        n in 8usize..90,
        d in 1usize..5,
        side in 1.0f64..500.0,
        seed in 0u64..1_000_000,
        ef_sel in 1usize..1000,
        k in 1usize..8,
    ) {
        let data = workloads::uniform_cube_flat(n, d, side, seed).into_dataset(Euclidean);
        let g = GNet::build_fast(&data, 1.0);
        let q = workloads::uniform_queries_flat(1, d, -5.0, side + 5.0, seed ^ 0xBEEF)
            .into_rows()
            .remove(0);
        let ef = 1 + ef_sel % n;
        let mut exact: Vec<(u32, f64)> =
            (0..n).map(|i| (i as u32, data.surrogate_to(i, &q))).collect();
        exact.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        let topk = &exact[..k.min(n)];
        for kind in [QuantKind::F32, QuantKind::Sq8] {
            let rows: Vec<&[f64]> = (0..n).map(|i| data.point(i).coords()).collect();
            let compact = CompactPoints::from_rows(kind, &rows).unwrap();
            // k = ef exposes the full re-ranked candidate list.
            let out = beam_search_quantized_surrogate(&g.graph, &data, &compact, 0, &q, ef, ef);
            for &(id, s) in &out.results {
                prop_assert_eq!(
                    s,
                    data.surrogate_to(id as usize, &q),
                    "{} reported a non-exact surrogate for id {}", kind.name(), id
                );
            }
            let have: std::collections::HashSet<u32> =
                out.results.iter().map(|&(id, _)| id).collect();
            if topk.iter().all(|&(id, _)| have.contains(&id)) {
                prop_assert_eq!(
                    &out.results[..topk.len()],
                    topk,
                    "{} re-ranked top-k diverged though all of it was gathered",
                    kind.name()
                );
            }
        }
    }

    /// `batch_beam_quantized_detailed` is bit-identical across thread
    /// counts 1 / 2 / machine, for both compact representations.
    #[test]
    fn quantized_batches_are_thread_invariant(
        n in 8usize..80,
        d in 1usize..4,
        m in 1usize..8,
        seed in 0u64..1_000_000,
        ef in 1usize..12,
        k in 1usize..6,
    ) {
        let side = 60.0;
        let data = workloads::uniform_cube_flat(n, d, side, seed).into_dataset(Euclidean);
        let g = GNet::build_fast(&data, 1.0);
        let engine = QueryEngine::new(g.graph, data);
        let queries = workloads::uniform_queries_flat(m, d, -5.0, side + 5.0, seed ^ 0xF00D)
            .into_rows();
        let starts: Vec<u32> = (0..m).map(|i| ((i * 41 + 7) % n) as u32).collect();
        for kind in [QuantKind::F32, QuantKind::Sq8] {
            let compact = engine.quantize(kind).unwrap();
            let base = engine
                .clone()
                .with_threads(1)
                .batch_beam_quantized_detailed(&compact, &starts, &queries, ef, k);
            for threads in thread_counts() {
                let got = engine
                    .clone()
                    .with_threads(threads)
                    .batch_beam_quantized_detailed(&compact, &starts, &queries, ef, k);
                prop_assert_eq!(
                    got.dist_comps, base.dist_comps,
                    "{} batch total diverged at {} threads", kind.name(), threads
                );
                prop_assert_eq!(
                    &got.outcomes, &base.outcomes,
                    "{} outcomes diverged at {} threads", kind.name(), threads
                );
            }
        }
    }

    /// At full beam width on a navigable graph the candidate set is the
    /// whole vertex set, so the quantized search must be bit-identical to
    /// the exact `f64` beam — results, ids, and reported distances.
    #[test]
    fn full_width_quantized_search_equals_the_exact_beam(
        n in 8usize..70,
        d in 1usize..5,
        seed in 0u64..1_000_000,
        k in 1usize..6,
    ) {
        let side = 80.0;
        let data = workloads::uniform_cube_flat(n, d, side, seed).into_dataset(Euclidean);
        let g = GNet::build_fast(&data, 1.0);
        let q = workloads::uniform_queries_flat(1, d, -5.0, side + 5.0, seed ^ 0xACE)
            .into_rows()
            .remove(0);
        let exact = beam_search_detailed(&g.graph, &data, 0, &q, n, k);
        for kind in [QuantKind::F32, QuantKind::Sq8] {
            let rows: Vec<&[f64]> = (0..n).map(|i| data.point(i).coords()).collect();
            let compact = CompactPoints::from_rows(kind, &rows).unwrap();
            let quant = beam_search_quantized(&g.graph, &data, &compact, 0, &q, n, k);
            prop_assert_eq!(
                &quant.results, &exact.results,
                "{} full-width results diverged from the exact beam", kind.name()
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Degenerate inputs: the cases an affine coder is most likely to get wrong.
// ---------------------------------------------------------------------------

/// Builds an engine over explicit rows with a complete graph (so every
/// vertex is reachable at full width regardless of geometry).
fn tiny_engine(rows: Vec<Vec<f64>>) -> QueryEngine<Vec<f64>, Euclidean> {
    let n = rows.len();
    QueryEngine::new(Graph::complete(n), Dataset::new(rows, Euclidean))
}

/// Full-width quantized search must equal the exact beam on `engine`, for
/// both kinds, and the quantized snapshot must round-trip the compact store
/// and the answers bit for bit.
fn assert_degenerate_contract(engine: &QueryEngine<Vec<f64>, Euclidean>, q: Vec<f64>, tag: &str) {
    let n = engine.data().len();
    let starts = vec![0u32];
    let queries = vec![q];
    let exact = engine.batch_beam_detailed(&starts, &queries, n, n.min(3));
    for kind in [QuantKind::F32, QuantKind::Sq8] {
        let compact = engine.quantize(kind).unwrap();
        let quant = engine.batch_beam_quantized_detailed(&compact, &starts, &queries, n, n.min(3));
        assert_eq!(
            quant.outcomes[0].results,
            exact.outcomes[0].results,
            "{tag}/{}: full-width quantized results diverged",
            kind.name()
        );

        let path = temp_path(tag, kind as u64);
        engine.save_quantized(&path, 0, None, &compact).unwrap();
        let (loaded, back, meta) =
            QueryEngine::<FlatRow, Euclidean>::load_quantized(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(
            back,
            compact,
            "{tag}/{}: compact store round-trip",
            kind.name()
        );
        assert_eq!(meta.n, n as u64);
        assert_eq!(loaded.graph(), engine.graph());
        for i in 0..n {
            assert_eq!(
                loaded.data().point(i).coords(),
                engine.data().point(i).as_slice(),
                "{tag}/{}: exact coords round-trip for point {i}",
                kind.name()
            );
        }
    }
}

#[test]
fn constant_dimensions_have_zero_step_and_decode_exactly() {
    // Dimension 1 is constant; dimension 2 is constant at a signed zero.
    let rows = vec![
        vec![1.0, 7.25, -0.0],
        vec![2.5, 7.25, 0.0],
        vec![-3.0, 7.25, -0.0],
        vec![10.0, 7.25, 0.0],
    ];
    let sq8 = Sq8Points::from_rows(&rows).unwrap();
    assert_eq!(sq8.steps()[1], 0.0, "constant dimension must have step 0");
    assert_eq!(sq8.steps()[2], 0.0, "±0.0 dimension must have step 0");
    let mut decoded = Vec::new();
    for (i, row) in rows.iter().enumerate() {
        sq8.decode_row(i, &mut decoded);
        assert_eq!(decoded[1], row[1], "constant dim decodes exactly for {i}");
        assert_eq!(decoded[2], 0.0, "signed-zero dim decodes to zero for {i}");
    }
    let engine = tiny_engine(rows);
    assert_degenerate_contract(&engine, vec![0.9, 7.0, 0.1], "constdim");
}

#[test]
fn a_single_point_encodes_searches_and_snapshots() {
    let engine = tiny_engine(vec![vec![3.5, -1.25]]);
    for kind in [QuantKind::F32, QuantKind::Sq8] {
        let compact = engine.quantize(kind).unwrap();
        assert_eq!(compact.len(), 1);
        // One point means every dimension is constant: SQ8 decodes exactly.
        let mut decoded = Vec::new();
        compact.decode_row(0, &mut decoded);
        if kind == QuantKind::Sq8 {
            assert_eq!(decoded, vec![3.5, -1.25]);
        }
    }
    assert_degenerate_contract(&engine, vec![0.0, 0.0], "single");
}

#[test]
fn one_dimensional_points_keep_the_full_contract() {
    let rows: Vec<Vec<f64>> = (0..12).map(|i| vec![f64::from(i) * 1.75 - 9.0]).collect();
    let engine = tiny_engine(rows);
    assert_degenerate_contract(&engine, vec![2.3], "d1");
}

#[test]
fn signed_zeros_and_subnormals_are_encoded_without_panic() {
    let tiny = f64::MIN_POSITIVE / 4.0; // subnormal
    let rows = vec![
        vec![-0.0, 1.0],
        vec![0.0, -1.0],
        vec![tiny, 0.5],
        vec![-tiny, -0.5],
        vec![5.0e-310, 0.0],
    ];
    let sq8 = Sq8Points::from_rows(&rows).unwrap();
    let mut decoded = Vec::new();
    for (i, row) in rows.iter().enumerate() {
        sq8.decode_row(i, &mut decoded);
        for j in 0..2 {
            let bound = sq8.steps()[j] / 2.0;
            assert!(
                (row[j] - decoded[j]).abs() <= bound * (1.0 + 1e-12) + 1e-12,
                "subnormal row {i} dim {j} violates the step bound"
            );
        }
    }
    let engine = tiny_engine(rows);
    assert_degenerate_contract(&engine, vec![tiny, 0.25], "subnormal");
}
