//! Layout parity: a flat-backed dataset (`FlatPoints` → `Dataset<FlatRow>`)
//! must be **observationally identical** to the legacy nested
//! `Vec<Vec<f64>>` dataset holding the same coordinates — same built
//! graphs, same greedy/budgeted/beam answers hop for hop, same brute-force
//! k-NN, and the same `dist_comps` accounting, at every thread count. The
//! flat layout (and the squared-distance comparison surrogate both layouts
//! share) is allowed to change the wall clock only.

use proptest::prelude::*;
use proximity_graphs::core::{beam_search, greedy, query, GNet, QueryEngine};
use proximity_graphs::metric::{Counting, Dataset, Euclidean, FlatRow};
use proximity_graphs::workloads;

type CountingDataset<P> = Dataset<P, Counting<Euclidean>>;

/// The same instance in both layouts, plus queries and start vertices.
#[allow(clippy::type_complexity)]
fn paired_instance(
    n: usize,
    d: usize,
    m: usize,
    seed: u64,
) -> (
    CountingDataset<FlatRow>,
    CountingDataset<Vec<f64>>,
    Vec<FlatRow>,
    Vec<Vec<f64>>,
    Vec<u32>,
) {
    let side = 40.0;
    let flat_pts = workloads::uniform_cube_flat(n, d, side, seed);
    let nested_pts = flat_pts.to_nested();
    let queries_flat = workloads::uniform_queries_flat(m, d, -5.0, side + 5.0, seed ^ 0xABCD);
    let queries_nested = queries_flat.to_nested();
    let starts: Vec<u32> = (0..m)
        .map(|i| ((i * 31 + seed as usize) % n) as u32)
        .collect();
    (
        flat_pts.into_dataset(Counting::new(Euclidean)),
        Dataset::new(nested_pts, Counting::new(Euclidean)),
        queries_flat.into_rows(),
        queries_nested,
        starts,
    )
}

fn thread_counts() -> [usize; 3] {
    let machine = std::thread::available_parallelism().map_or(1, |c| c.get());
    [1, 2, machine]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn search_and_knn_agree_across_layouts(
        n in 8usize..100,
        d in 1usize..6,
        m in 1usize..10,
        seed in 0u64..1_000_000,
        budget in 1u64..200,
        ef in 1usize..8,
        k in 1usize..6,
    ) {
        let (flat, nested, q_flat, q_nested, starts) = paired_instance(n, d, m, seed);

        // The same graph comes out of both layouts.
        let gf = GNet::build_fast(&flat, 1.0);
        let gn = GNet::build_fast(&nested, 1.0);
        prop_assert_eq!(&gf.graph, &gn.graph);
        flat.metric().reset();
        nested.metric().reset();

        for (i, (qf, qn)) in q_flat.iter().zip(q_nested.iter()).enumerate() {
            let s = starts[i];
            let a = greedy(&gf.graph, &flat, s, qf);
            let b = greedy(&gn.graph, &nested, s, qn);
            prop_assert_eq!(a.result, b.result);
            prop_assert_eq!(a.result_dist, b.result_dist);
            prop_assert_eq!(&a.hops, &b.hops);
            prop_assert_eq!(a.dist_comps, b.dist_comps);
            prop_assert_eq!(a.self_terminated, b.self_terminated);

            let a = query(&gf.graph, &flat, s, qf, budget);
            let b = query(&gn.graph, &nested, s, qn, budget);
            prop_assert_eq!(a.result, b.result);
            prop_assert_eq!(a.result_dist, b.result_dist);
            prop_assert_eq!(&a.hops, &b.hops);
            prop_assert_eq!(a.dist_comps, b.dist_comps);
            prop_assert_eq!(a.self_terminated, b.self_terminated);

            let (ra, ca) = beam_search(&gf.graph, &flat, s, qf, ef, k);
            let (rb, cb) = beam_search(&gn.graph, &nested, s, qn, ef, k);
            prop_assert_eq!(&ra, &rb);
            prop_assert_eq!(ca, cb);

            // Brute-force selection: same ids, bit-identical distances.
            prop_assert_eq!(flat.k_nearest_brute(qf, k), nested.k_nearest_brute(qn, k));
            prop_assert_eq!(flat.nearest_brute(qf), nested.nearest_brute(qn));
        }
        // Identical work done on both layouts, counted by the shared-atomic
        // instrumentation the paper's cost model uses.
        prop_assert_eq!(flat.metric().count(), nested.metric().count());
    }

    #[test]
    fn engine_batches_agree_across_layouts_and_thread_counts(
        n in 8usize..80,
        d in 1usize..5,
        m in 1usize..12,
        seed in 0u64..1_000_000,
        ef in 1usize..8,
        k in 1usize..5,
    ) {
        let (flat, nested, q_flat, q_nested, starts) = paired_instance(n, d, m, seed);
        let g = GNet::build_fast(&flat, 1.0);
        let flat_engine = QueryEngine::new(g.graph.clone(), flat);
        let nested_engine = QueryEngine::new(g.graph, nested);

        let mut reference: Option<u64> = None;
        for threads in thread_counts() {
            let bf = flat_engine.clone().with_threads(threads).batch_greedy(&starts, &q_flat);
            let bn = nested_engine.clone().with_threads(threads).batch_greedy(&starts, &q_nested);
            prop_assert_eq!(bf.dist_comps, bn.dist_comps);
            for (a, b) in bf.outcomes.iter().zip(bn.outcomes.iter()) {
                prop_assert_eq!(a.result, b.result);
                prop_assert_eq!(a.result_dist, b.result_dist);
                prop_assert_eq!(&a.hops, &b.hops);
                prop_assert_eq!(a.dist_comps, b.dist_comps);
            }
            // Thread-count invariance of the distance totals, across layouts.
            let expect = *reference.get_or_insert(bf.dist_comps);
            prop_assert_eq!(bf.dist_comps, expect);

            let ebf = flat_engine.clone().with_threads(threads).batch_beam(&starts, &q_flat, ef, k);
            let ebn = nested_engine.clone().with_threads(threads).batch_beam(&starts, &q_nested, ef, k);
            prop_assert_eq!(&ebf.results, &ebn.results);
            prop_assert_eq!(ebf.dist_comps, ebn.dist_comps);
        }
    }
}
