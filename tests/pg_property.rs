//! Integration: the `(1+ε)`-PG property (Fact 2.1) holds operationally for
//! every graph the library claims it for, across workloads, metrics,
//! epsilons, query distributions and start vertices — and both checkers
//! (declarative navigability and exhaustive greedy) agree.

use proximity_graphs::baselines::slow_preprocessing;
use proximity_graphs::core::{
    check_navigable, check_pg_exhaustive, GNet, GNetIndependent, MergedGraph, MergedParams, Starts,
    ThetaGraph,
};
use proximity_graphs::metric::{Dataset, Euclidean};
use proximity_graphs::workloads;

fn queries_for(points: &[Vec<f64>], seed: u64) -> Vec<Vec<f64>> {
    let mut qs = workloads::perturbed_queries(points, 10, 1.0, seed);
    let d = points[0].len();
    qs.extend(workloads::uniform_queries(10, d, -30.0, 130.0, seed + 1));
    // Data points themselves are legal queries (exact NN must be returned,
    // since (1+ε) * 0 = 0).
    qs.push(points[0].clone());
    qs.push(points[points.len() / 2].clone());
    qs
}

#[test]
fn gnet_is_a_pg_on_every_workload() {
    for (name, points) in workloads::standard_suite(120, 7) {
        let queries = queries_for(&points, 100);
        let data = Dataset::new(points, Euclidean);
        for eps in [1.0, 0.5] {
            let g = GNet::build(&data, eps);
            check_navigable(&g.graph, &data, &queries, eps)
                .unwrap_or_else(|v| panic!("{name} eps={eps}: not navigable: {v}"));
            check_pg_exhaustive(&g.graph, &data, &queries, eps, Starts::All)
                .unwrap_or_else(|v| panic!("{name} eps={eps}: greedy failed: {v}"));
        }
    }
}

#[test]
fn gnet_independent_nets_is_a_pg() {
    let points = workloads::uniform_cube(90, 2, 60.0, 8);
    let queries = queries_for(&points, 101);
    let data = Dataset::new(points, Euclidean);
    let g = GNetIndependent::build(&data, 1.0);
    check_navigable(&g.graph, &data, &queries, 1.0).unwrap();
    check_pg_exhaustive(&g.graph, &data, &queries, 1.0, Starts::All).unwrap();
}

#[test]
fn theta_graph_is_a_pg_at_the_lemma_constant() {
    let points = workloads::uniform_cube(70, 2, 40.0, 9);
    let queries = queries_for(&points, 102);
    let data = Dataset::new(points, Euclidean);
    let g = ThetaGraph::build_for_pg(&data, 1.0);
    check_navigable(&g.graph, &data, &queries, 1.0).unwrap();
    check_pg_exhaustive(&g.graph, &data, &queries, 1.0, Starts::All).unwrap();
}

#[test]
fn merged_graph_is_a_pg_for_several_seeds() {
    let points = workloads::gaussian_clusters(100, 2, 8, 2.0, 80.0, 10);
    let queries = queries_for(&points, 103);
    let data = Dataset::new(points, Euclidean);
    for seed in [1u64, 22, 333] {
        let m = MergedGraph::build(&data, MergedParams::new(1.0).with_seed(seed));
        check_navigable(&m.graph, &data, &queries, 1.0)
            .unwrap_or_else(|v| panic!("seed {seed}: {v}"));
        check_pg_exhaustive(&m.graph, &data, &queries, 1.0, Starts::Stride(9))
            .unwrap_or_else(|v| panic!("seed {seed}: {v}"));
    }
}

#[test]
fn diskann_slow_honors_the_indyk_xu_ratio() {
    let points = workloads::uniform_cube(80, 2, 50.0, 11);
    let queries = queries_for(&points, 104);
    let data = Dataset::new(points, Euclidean);
    for alpha in [1.5f64, 2.0, 3.0] {
        let eps = 2.0 / (alpha - 1.0); // ratio (α+1)/(α-1) = 1 + ε
        let g = slow_preprocessing(&data, alpha);
        check_navigable(&g, &data, &queries, eps).unwrap_or_else(|v| panic!("alpha {alpha}: {v}"));
        check_pg_exhaustive(&g, &data, &queries, eps, Starts::Stride(7))
            .unwrap_or_else(|v| panic!("alpha {alpha}: {v}"));
    }
}

#[test]
fn checkers_agree_on_broken_graphs() {
    // Remove edges until navigability breaks; both checkers must flag the
    // same graphs (failure-injection cross-validation).
    let points = workloads::uniform_cube(50, 2, 30.0, 12);
    let queries = queries_for(&points, 105);
    let data = Dataset::new(points, Euclidean);
    let g = GNet::build(&data, 1.0);

    let mut broken = g.graph.clone();
    // Strip vertex 0 of all its out-edges: it becomes a sink, so greedy
    // starting there cannot leave. Unless 0 is a (1+ε)-ANN for every query,
    // both checkers must fail.
    for &t in g.graph.neighbors(0).to_vec().iter() {
        broken = broken.without_edge(0, t);
    }
    let nav = check_navigable(&broken, &data, &queries, 1.0);
    let exh = check_pg_exhaustive(&broken, &data, &queries, 1.0, Starts::All);
    assert_eq!(nav.is_ok(), exh.is_ok(), "checkers disagree");
    assert!(nav.is_err(), "a sink vertex should break the PG property");
}

#[test]
fn complete_graph_is_always_a_pg() {
    use proximity_graphs::core::Graph;
    let points = workloads::uniform_cube(40, 3, 20.0, 13);
    let queries = queries_for(&points, 106);
    let data = Dataset::new(points, Euclidean);
    let g = Graph::complete(40);
    for eps in [0.01, 0.5, 1.0] {
        check_navigable(&g, &data, &queries, eps).unwrap();
    }
}
