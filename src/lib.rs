//! # proximity-graphs
//!
//! A from-scratch Rust reproduction of **Lu & Tao, “Proximity Graphs for
//! Similarity Search: Fast Construction, Lower Bounds, and Euclidean
//! Separation” (PODS 2025)** — the theory behind the proximity-graph ANN
//! paradigm (HNSW, DiskANN, NSG, …), made executable.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | Crate | Contents |
//! |-------|----------|
//! | [`metric`] | `Metric` trait, `L_p` metrics with unrolled kernels, contiguous `FlatPoints`/`FlatRow` storage, distance-count instrumentation, aspect-ratio and doubling-dimension tools |
//! | [`covertree`] | dynamic cover tree (insert / lazy delete / `c`-ANN / range) — the Cole–Gottlieb stand-in of Section 2.4 |
//! | [`nets`] | `r`-nets and the near-linear hierarchical net ladder (Har-Peled–Mendel stand-in) |
//! | [`core`] | `G_net` (Thm 1.1), `greedy`/`query` (Sec 1.1), navigability checking (Fact 2.1), θ-graphs (Sec 5.1), the merged Euclidean graph (Thm 1.3), the parallel batched `QueryEngine` |
//! | [`baselines`] | brute force, slow-preprocessing DiskANN, Vamana, HNSW, NSW |
//! | [`hardness`] | the executable lower-bound instances of Theorem 1.2 (Sections 3–4) with adversarial verifiers |
//! | [`workloads`] | seeded dataset and query generators |
//! | [`store`] | versioned on-disk index snapshots (`QueryEngine::save`/`load` live in [`core::snapshot`]) |
//! | [`eval`] | the self-scoring layer: exact ground truth with fingerprinted caching, recall/quality metrics, recall-vs-QPS frontier sweeps |
//! | [`serve`] | the online serving layer: TCP server with a length-prefixed checksummed protocol, micro-batched query coalescing, multi-index registry with zero-drop snapshot hot-swap |
//!
//! The architecture — crate dependency diagram, flat-storage design,
//! surrogate-comparison semantics, compat-shim policy, and the snapshot
//! format spec — is documented in `ARCHITECTURE.md` at the repository root.
//!
//! ## Quickstart
//!
//! ```
//! use proximity_graphs::core::{greedy, GNet};
//! use proximity_graphs::metric::{Counting, Dataset, Euclidean};
//! use proximity_graphs::workloads;
//!
//! // 1. Data: 500 random 2-d vectors, with distance-call counting.
//! let points = workloads::uniform_cube(500, 2, 100.0, 42);
//! let data = Dataset::new(points, Counting::new(Euclidean));
//!
//! // 2. Build the paper's (1+ε)-proximity graph for ε = 1 (a 2-ANN graph).
//! let pg = GNet::build(&data, 1.0);
//!
//! // 3. Route a query greedily from an arbitrary start vertex.
//! data.metric().reset();
//! let q = vec![31.4, 15.9];
//! let out = greedy(&pg.graph, &data, 0, &q);
//!
//! // The answer is a 2-approximate nearest neighbor...
//! let (_, exact) = data.nearest_brute(&q);
//! assert!(out.result_dist <= 2.0 * exact);
//! // ...found with far fewer distance computations than a linear scan.
//! assert!(out.dist_comps < 500);
//! ```
//!
//! ## Parallel batched queries
//!
//! A serving system routes many queries at once. The
//! [`QueryEngine`](core::QueryEngine) owns a built graph plus its dataset
//! and shards query batches across a thread pool (sized by the `PG_THREADS`
//! environment variable, a `--threads` flag, or the machine's parallelism) —
//! with per-query results **identical to the sequential routines** at every
//! thread count, and distance accounting that stays exact because the
//! [`Counting`](metric::Counting) wrapper's counter is shared atomically:
//!
//! ```
//! use proximity_graphs::core::{greedy, GNet, QueryEngine};
//! use proximity_graphs::metric::{Dataset, Euclidean};
//! use proximity_graphs::workloads;
//!
//! let points = workloads::uniform_cube(400, 2, 80.0, 7);
//! let data = Dataset::new(points, Euclidean);
//! let pg = GNet::build(&data, 1.0);
//!
//! let engine = QueryEngine::new(pg.graph, data).with_threads(2);
//! let queries = workloads::uniform_queries(32, 2, 0.0, 80.0, 8);
//! let starts: Vec<u32> = (0..32).map(|i| (i * 13) % 400).collect();
//!
//! let batch = engine.batch_greedy(&starts, &queries);
//! assert_eq!(batch.outcomes.len(), 32);
//! for (i, out) in batch.outcomes.iter().enumerate() {
//!     let solo = greedy(engine.graph(), engine.data(), starts[i], &queries[i]);
//!     assert_eq!(out.result, solo.result);
//! }
//! // Budgeted batches (`batch_query`) and beam batches (`batch_beam`) work
//! // the same way; `batch.dist_comps` aggregates the whole batch's cost.
//! ```
//!
//! For serving workloads, store points in the contiguous
//! [`FlatPoints`](metric::FlatPoints) layout
//! (`workloads::uniform_cube_flat(..).into_dataset(Euclidean)`): identical
//! results and distance counts (pinned by `tests/flat_parity.rs`), better
//! cache behavior on every scan — see README § Performance.
//!
//! ## Index snapshots: build once, serve forever
//!
//! Construction is the expensive phase; queries are cheap greedy walks.
//! [`QueryEngine::save`](core::QueryEngine::save) persists the index
//! (graph, flat points, metadata) to the versioned [`store`] format, and
//! [`QueryEngine::load`](core::QueryEngine::load) reconstructs an engine
//! that answers **bit-identically** to the one that was saved (pinned by
//! `tests/snapshot_parity.rs` across thread counts). Corrupt, truncated, or
//! incompatible files fail with typed [`store::SnapshotError`]s, never
//! panics:
//!
//! ```
//! use proximity_graphs::core::{GNet, QueryEngine};
//! use proximity_graphs::metric::{Euclidean, FlatRow};
//! use proximity_graphs::workloads;
//!
//! let data = workloads::uniform_cube_flat(300, 2, 70.0, 9).into_dataset(Euclidean);
//! let pg = GNet::build(&data, 1.0);
//! let engine = QueryEngine::new(pg.graph, data);
//!
//! // Offline: save the built index.
//! let path = std::env::temp_dir().join(format!("pg_facade_doc_{}.pgix", std::process::id()));
//! engine.save_with(&path, 0, Some(pg.params.into())).unwrap();
//!
//! // Online: load and serve — identical answers, no rebuild.
//! let loaded: QueryEngine<FlatRow, Euclidean> = QueryEngine::load(&path).unwrap();
//! std::fs::remove_file(&path).unwrap();
//! let queries = workloads::uniform_queries_flat(8, 2, 0.0, 70.0, 10).into_rows();
//! let starts = vec![0u32; 8];
//! let a = engine.batch_greedy(&starts, &queries);
//! let b = loaded.batch_greedy(&starts, &queries);
//! assert_eq!(a.dist_comps, b.dist_comps);
//! for (x, y) in a.outcomes.iter().zip(b.outcomes.iter()) {
//!     assert_eq!(x.result, y.result);
//! }
//! ```

//!
//! ## Scoring quality: recall–QPS frontiers
//!
//! Speed without recall is meaningless — a regression that returns the
//! wrong neighbors faster would read as a win on a pure throughput
//! benchmark. The [`eval`] subsystem makes the workspace self-scoring:
//! exact ground truth by parallel brute force (cacheable on disk, keyed by
//! a workload fingerprint), tie-safe quality metrics, and a
//! [`FrontierSweep`](eval::FrontierSweep) that walks a search-effort axis
//! through any index behind the
//! [`SweepSearch`](baselines::SweepSearch) adapter trait:
//!
//! ```
//! use proximity_graphs::baselines::{BruteIndex, GraphIndex};
//! use proximity_graphs::core::GNet;
//! use proximity_graphs::eval::{FrontierSweep, GroundTruth};
//! use proximity_graphs::metric::Euclidean;
//! use proximity_graphs::workloads;
//!
//! let data = workloads::uniform_cube_flat(400, 2, 80.0, 7).into_dataset(Euclidean);
//! let queries = workloads::uniform_queries_flat(16, 2, 0.0, 80.0, 8).into_rows();
//!
//! // Exact top-5 ground truth, then sweep a G_net beam across two widths.
//! let truth = GroundTruth::compute(&data, &queries, 5);
//! let pg = GNet::build(&data, 1.0);
//! let sweep = FrontierSweep::new(5, vec![8, 64]);
//! let frontier = sweep.run(&GraphIndex::new(pg.graph), &data, &queries, &truth);
//!
//! // Wider beams never lose recall here, and brute force is exact by
//! // construction — the self-check the evaluation harness runs for real.
//! assert!(frontier[1].score.recall >= frontier[0].score.recall);
//! let reference = sweep.run(&BruteIndex, &data, &queries, &truth);
//! assert!(reference.iter().all(|p| p.score.recall == 1.0));
//! ```
//!
//! The standard-workload driver is `exp_recall` (`pg_bench`); the
//! experiments handbook `EXPERIMENTS.md` at the repository root explains
//! how to read the frontier tables and the `BENCH_<label>.json` artifact.
//!
//! ## Serving: queries over the wire
//!
//! The [`serve`] crate turns a built index into an online service on plain
//! `std::net::TcpListener` — no external dependencies. Frames are
//! length-prefixed and FNV-checksummed (the byte-level spec lives in
//! `ARCHITECTURE.md` § "Serving protocol"); malformed input yields typed
//! error responses, never panics. Concurrent single queries coalesce into
//! `batch_beam` micro-batches, and a named-index registry supports atomic
//! snapshot hot-swap with zero dropped requests — every reply carries the
//! epoch of the exact snapshot that answered it:
//!
//! ```
//! use std::sync::Arc;
//!
//! use proximity_graphs::core::{GNet, QueryEngine};
//! use proximity_graphs::metric::Euclidean;
//! use proximity_graphs::serve::{Client, IndexRegistry, Server};
//! use proximity_graphs::workloads;
//!
//! let data = workloads::uniform_cube_flat(200, 2, 50.0, 21).into_dataset(Euclidean);
//! let pg = GNet::build(&data, 1.0);
//!
//! let registry = Arc::new(IndexRegistry::new());
//! registry.register("main", QueryEngine::new(pg.graph, data), 0).unwrap();
//! let server = Server::bind("127.0.0.1:0", registry, Default::default()).unwrap();
//!
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! let reply = client.query("main", &[25.0, 25.0], 16, 3).unwrap();
//! assert_eq!(reply.results.len(), 3);
//! assert_eq!(reply.epoch, 1); // answered by the first registered snapshot
//! ```
//!
//! Responses are **bit-identical** to calling
//! [`QueryEngine::batch_beam`](core::QueryEngine::batch_beam) directly —
//! single or coalesced, at any thread count — pinned by
//! `crates/serve/tests/equivalence.rs`. The load-generator experiment is
//! `exp_serve` (`pg_bench`), which asserts that equivalence before timing
//! anything.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use pg_baselines as baselines;
pub use pg_core as core;
pub use pg_covertree as covertree;
pub use pg_eval as eval;
pub use pg_hardness as hardness;
pub use pg_metric as metric;
pub use pg_nets as nets;
pub use pg_serve as serve;
pub use pg_store as store;
pub use pg_workloads as workloads;
